package iva

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// IntegrityMode selects how a checksum mismatch found at read time is
// handled (Options.Integrity).
type IntegrityMode int

const (
	// DegradeReads (the default) keeps queries answerable through vector-
	// list corruption: a corrupt segment contributes zero lower bounds, so
	// every affected tuple goes to refine, where the exact distance is
	// computed from the (verified) table record. Results are therefore
	// still exact — degradation trades filter I/O for correctness, never
	// correctness for availability. The damage is surfaced in
	// QueryStats.DegradedSegments and the iva_corrupt_segments_total
	// counter.
	DegradeReads IntegrityMode = iota
	// Strict fails any operation that touches corrupt bytes with a
	// *CorruptionError.
	Strict
)

// CorruptionError is the typed error every checksum mismatch surfaces as;
// match it with errors.As. File names the damaged store file, Offset the
// byte position of the damaged structure, and Segment the index segment id
// when the damage is segment-scoped.
type CorruptionError = storage.CorruptionError

// SearchContext is Search under a context: cancellation and deadlines are
// honored at stripe boundaries during the filter phase and before every
// refine fetch, returning ctx.Err() with the partial stats accumulated so
// far. An already-expired context fails before any device read. It composes
// with Options.QueryTimeout — the earlier deadline wins.
func (s *Store) SearchContext(ctx context.Context, q *Query) ([]Result, QueryStats, error) {
	return s.search(ctx, q, nil)
}

// ScrubReport is the machine-readable outcome of one Store.Scrub pass.
type ScrubReport struct {
	// FormatVersion is the index file's committed on-disk version; Legacy
	// marks pre-v4 index files, which carry no checksums (the first Sync
	// upgrades them in place).
	FormatVersion int
	Legacy        bool

	// Index segment sweep: segments covered by the committed checksum map,
	// how many failed their CRC32C word, and how many were skipped because
	// they hold unsynced writes. CorruptIndexSegIDs lists the failing
	// segments' ids — the read-repair path fetches clean copies of exactly
	// these from a replication peer.
	IndexSegments        int
	CorruptIndexSegments int
	DirtyIndexSegments   int
	CorruptIndexSegIDs   []uint32

	// Checkpoint record sweep, plus records already dropped when the index
	// was opened under DegradeReads.
	Checkpoints        int
	CorruptCheckpoints int
	DroppedCheckpoints int

	// Zone-map record sweep (format v5): committed records verified, records
	// failing their trailer, and records already dropped when the index was
	// opened. Zone damage only disables stripe pruning — answers never
	// change — but it is still damage worth repairing with a rebuild.
	Zones        int
	CorruptZones int
	DroppedZones int

	// SuperblockOK reports the index superblock trailer check; MapDropped
	// that the committed checksum map itself was unreadable and segment
	// coverage is degraded until the next Sync.
	SuperblockOK bool
	MapDropped   bool

	// Table record sweep: records swept, records carrying a CRC32C trailer,
	// pre-v4 records without one, and records that failed verification.
	TableRecords int
	TableCovered int
	TableLegacy  int
	CorruptTable int
	// CatalogOK reports that the catalog file re-decoded cleanly (always
	// true for in-memory stores, which have no catalog file).
	CatalogOK bool

	// Problems holds one line per damaged structure, prefixed with the file
	// it lives in.
	Problems []string

	// Shards holds the per-shard reports when the scrub ran on a Sharded
	// store; the top-level counters are sums.
	Shards []*ScrubReport
}

// Clean reports whether the scrub found no damage. A Legacy index is clean
// by definition — there is nothing to verify against — but the flag (and the
// iva_format_legacy gauge) surface the reduced assurance.
func (r *ScrubReport) Clean() bool {
	return r.CorruptIndexSegments == 0 && r.CorruptCheckpoints == 0 &&
		r.DroppedCheckpoints == 0 && r.CorruptZones == 0 && r.DroppedZones == 0 &&
		r.SuperblockOK && !r.MapDropped &&
		r.CorruptTable == 0 && r.CatalogOK
}

// Scrub sweeps every file of the store verifying every committed checksum:
// the index superblock, each covered index segment, each checkpoint record,
// each table record, and the catalog. Unlike query-time verification it
// re-reads every covered byte (the first-touch cache is ignored) and never
// degrades — damage is reported, not worked around. Read-only and safe on a
// live store; pair it with Rebuild to repair a damaged index from a clean
// table.
func (s *Store) Scrub() (*ScrubReport, error) { return s.scrubYield(nil) }

// scrubYield is Scrub with a pacing hook: a non-nil yield is invoked once per
// verified unit (index segment, checkpoint record, table record), which the
// background Scrubber uses to time-slice and throttle the sweep. The engine
// read lock is held for the whole pass, so yields must stay short.
func (s *Store) scrubYield(yield func()) (*ScrubReport, error) {
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	ixRep, err := s.ix.ScrubYield(yield)
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{
		FormatVersion:        ixRep.FormatVersion,
		Legacy:               ixRep.Legacy,
		IndexSegments:        ixRep.Segments,
		CorruptIndexSegments: ixRep.CorruptSegments,
		DirtyIndexSegments:   ixRep.DirtySegments,
		CorruptIndexSegIDs:   ixRep.CorruptSegIDs,
		Checkpoints:          ixRep.Checkpoints,
		CorruptCheckpoints:   ixRep.CorruptCheckpoints,
		DroppedCheckpoints:   ixRep.DroppedCheckpoints,
		Zones:                ixRep.Zones,
		CorruptZones:         ixRep.CorruptZones,
		DroppedZones:         ixRep.DroppedZones,
		SuperblockOK:         ixRep.SuperblockOK,
		MapDropped:           ixRep.MapDropped,
		CatalogOK:            true,
	}
	for _, p := range ixRep.Problems {
		rep.Problems = append(rep.Problems, "iva.idx: "+p)
	}

	tblRep := s.tbl.ScrubYield(yield)
	rep.TableRecords = tblRep.Records
	rep.TableCovered = tblRep.Covered
	rep.TableLegacy = tblRep.Legacy
	rep.CorruptTable = tblRep.Corrupt
	for _, p := range tblRep.Problems {
		rep.Problems = append(rep.Problems, "table.swt: "+p)
	}

	if s.dir != "" {
		blob, err := os.ReadFile(filepath.Join(s.dir, catalogFileName))
		if err != nil {
			rep.CatalogOK = false
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: %v", catalogFileName, err))
		} else if _, err := table.DecodeCatalog(blob); err != nil {
			rep.CatalogOK = false
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: %v", catalogFileName, err))
		}
	}
	// Corrupt index segments the sweep found are candidates for peer
	// read-repair — queue them like a degraded query would.
	if len(rep.CorruptIndexSegIDs) > 0 {
		s.enqueueRepair(rep.CorruptIndexSegIDs)
	}
	return rep, nil
}

// SearchContext is Sharded.Search under a context; the context fans out to
// every shard (see Store.SearchContext).
func (s *Sharded) SearchContext(ctx context.Context, q *Query) ([]Result, QueryStats, error) {
	return s.searchContext(ctx, q)
}

// Scrub sweeps every shard (see Store.Scrub) and sums the reports. The
// summed report keeps each shard's full report in Shards; FormatVersion is
// the lowest across shards and Legacy/flags are ORed so a single damaged or
// lagging shard marks the whole partition.
func (s *Sharded) Scrub() (*ScrubReport, error) {
	agg := &ScrubReport{SuperblockOK: true, CatalogOK: true}
	for i, st := range s.shards {
		r, err := st.Scrub()
		if err != nil {
			return nil, fmt.Errorf("iva: shard %d: %w", i, err)
		}
		if i == 0 || r.FormatVersion < agg.FormatVersion {
			agg.FormatVersion = r.FormatVersion
		}
		agg.Legacy = agg.Legacy || r.Legacy
		agg.IndexSegments += r.IndexSegments
		agg.CorruptIndexSegments += r.CorruptIndexSegments
		agg.DirtyIndexSegments += r.DirtyIndexSegments
		agg.Checkpoints += r.Checkpoints
		agg.CorruptCheckpoints += r.CorruptCheckpoints
		agg.DroppedCheckpoints += r.DroppedCheckpoints
		agg.Zones += r.Zones
		agg.CorruptZones += r.CorruptZones
		agg.DroppedZones += r.DroppedZones
		agg.SuperblockOK = agg.SuperblockOK && r.SuperblockOK
		agg.MapDropped = agg.MapDropped || r.MapDropped
		agg.TableRecords += r.TableRecords
		agg.TableCovered += r.TableCovered
		agg.TableLegacy += r.TableLegacy
		agg.CorruptTable += r.CorruptTable
		agg.CatalogOK = agg.CatalogOK && r.CatalogOK
		for _, p := range r.Problems {
			agg.Problems = append(agg.Problems, fmt.Sprintf("shard %d: %s", i, p))
		}
		agg.Shards = append(agg.Shards, r)
	}
	return agg, nil
}
