package iva

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func obsTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := Create("", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for i := 0; i < 500; i++ {
		if _, err := st.Insert(Row{
			"brand": Strings([]string{"canon", "nikon", "sony"}[i%3]),
			"price": Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestQueryStatsIO checks the satellite extension: callers see the query's
// I/O (cache hits, physical reads, modeled disk cost), not just wall time.
func TestQueryStatsIO(t *testing.T) {
	st := obsTestStore(t, Options{})
	_, qs, err := st.Search(NewQuery(5).WhereText("brand", "cannon").WhereNum("price", 230))
	if err != nil {
		t.Fatal(err)
	}
	if qs.Scanned == 0 {
		t.Fatal("no tuples scanned")
	}
	if qs.CacheHits+qs.PhysReads == 0 {
		t.Error("query reported no page requests at all")
	}
	if qs.DiskCostMS < 0 {
		t.Errorf("negative modeled cost %v", qs.DiskCostMS)
	}
	if qs.Shards != nil {
		t.Error("single-store stats should have no per-shard breakdown")
	}
}

// TestStoreMetricsText runs a store under load and checks the Prometheus
// exposition carries the acceptance-criteria series: latency histogram
// buckets, cache hit/miss counters, and per-phase timings.
func TestStoreMetricsText(t *testing.T) {
	st := obsTestStore(t, Options{})
	for i := 0; i < 10; i++ {
		if _, _, err := st.Search(NewQuery(3).WhereNum("price", float64(150+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Delete(0); err != nil {
		t.Fatal(err)
	}
	text := st.MetricsText()
	for _, want := range []string{
		"# TYPE iva_query_duration_seconds histogram",
		"iva_query_duration_seconds_bucket{le=",
		`iva_query_phase_duration_seconds_bucket{phase="filter"`,
		`iva_query_phase_duration_seconds_bucket{phase="refine"`,
		"iva_queries_total 10",
		"iva_inserts_total 500",
		"iva_deletes_total 1",
		"iva_io_cache_hits_total",
		"iva_io_phys_reads_total",
		`iva_io_reads_total{class="seq"}`,
		`iva_io_reads_total{class="rand"}`,
		"iva_io_modeled_cost_ms",
		"iva_tuples_live 499",
		"iva_query_scanned_tuples_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}
}

// TestSlowQueryLog sets a threshold every query exceeds and checks the log
// captures the full per-term trace.
func TestSlowQueryLog(t *testing.T) {
	st := obsTestStore(t, Options{SlowQueryThreshold: time.Nanosecond})
	if _, _, err := st.Search(NewQuery(5).WhereText("brand", "canon").WhereNum("price", 300)); err != nil {
		t.Fatal(err)
	}
	if st.SlowQueryCount() != 1 {
		t.Fatalf("slow query count = %d, want 1", st.SlowQueryCount())
	}
	var b strings.Builder
	if err := st.WriteSlowQueries(&b); err != nil {
		t.Fatal(err)
	}
	blob := b.String()
	var entries []struct {
		Query      string          `json:"query"`
		DurationMS float64         `json:"duration_ms"`
		Trace      json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(blob), &entries); err != nil {
		t.Fatalf("invalid slow-query JSON %s: %v", blob, err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries, want 1", len(entries))
	}
	if !strings.Contains(entries[0].Query, `brand="canon"`) || !strings.Contains(entries[0].Query, "k=5") {
		t.Errorf("query description = %q", entries[0].Query)
	}
	tr := string(entries[0].Trace)
	for _, want := range []string{`"filter"`, `"refine"`, `"fetch"`, `"term:brand"`, `"term:price"`, `"ndf"`, `"pruned"`} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace missing %s: %s", want, tr)
		}
	}
	if strings.Contains(text(st), "iva_slow_queries_total 0") {
		t.Error("slow query counter not incremented")
	}
}

func text(st *Store) string { return st.MetricsText() }

// TestSlowQueryDisabled checks the default store logs nothing.
func TestSlowQueryDisabled(t *testing.T) {
	st := obsTestStore(t, Options{})
	if _, _, err := st.Search(NewQuery(3).WhereNum("price", 100)); err != nil {
		t.Fatal(err)
	}
	if st.SlowQueryCount() != 0 {
		t.Fatal("disabled slow-query log captured a query")
	}
	var b strings.Builder
	if err := st.WriteSlowQueries(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("disabled log serialized %q", b.String())
	}
}

// TestShardedQueryStatsAggregation checks the fan-out no longer drops
// per-shard stats: counters sum, times take the critical path, and the
// breakdown is preserved.
func TestShardedQueryStatsAggregation(t *testing.T) {
	cl, err := CreateSharded("", 3, Options{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 300; i++ {
		if _, err := cl.Insert(Row{"price": Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	_, qs, err := cl.Search(NewQuery(5).WhereNum("price", 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Shards) != 3 {
		t.Fatalf("per-shard breakdown has %d entries, want 3", len(qs.Shards))
	}
	var scanned, hits, reads int64
	var cost float64
	var maxFilter time.Duration
	for _, sh := range qs.Shards {
		scanned += sh.Scanned
		hits += sh.CacheHits
		reads += sh.PhysReads
		cost += sh.DiskCostMS
		if sh.FilterTime > maxFilter {
			maxFilter = sh.FilterTime
		}
	}
	if qs.Scanned != scanned || qs.CacheHits != hits || qs.PhysReads != reads {
		t.Errorf("aggregate counters do not sum the shards: %+v", qs)
	}
	if qs.DiskCostMS != cost {
		t.Errorf("aggregate cost %v, shard sum %v", qs.DiskCostMS, cost)
	}
	if qs.FilterTime != maxFilter {
		t.Errorf("aggregate filter time %v, want slowest shard %v", qs.FilterTime, maxFilter)
	}
	if qs.Scanned != 300 {
		t.Errorf("scanned %d of 300 live tuples", qs.Scanned)
	}
}

// TestShardedMetricsAndSlowLog checks per-shard labeling in the shared
// registry and the single fan-out slow-log entry with per-shard spans.
func TestShardedMetricsAndSlowLog(t *testing.T) {
	cl, err := CreateSharded("", 2, Options{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 100; i++ {
		if _, err := cl.Insert(Row{"n": Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.Search(NewQuery(3).WhereNum("n", 7)); err != nil {
		t.Fatal(err)
	}
	text := cl.MetricsText()
	for _, want := range []string{
		`iva_queries_total{shard="0"} 1`,
		`iva_queries_total{shard="1"} 1`,
		"iva_fanout_queries_total 1",
		"iva_fanout_query_duration_seconds_bucket",
		"iva_shards 2",
		`iva_io_phys_reads_total{shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sharded metrics missing %q", want)
		}
	}
	// One fan-out entry (not one per shard), holding both shard subtraces.
	if cl.SlowQueryCount() != 1 {
		t.Fatalf("fan-out slow count = %d, want 1", cl.SlowQueryCount())
	}
	var b strings.Builder
	if err := cl.WriteSlowQueries(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), `"name":"query"`); got != 2 {
		t.Errorf("fan-out trace has %d shard query spans, want 2: %s", got, b.String())
	}
	if !strings.Contains(b.String(), `"name":"fanout"`) {
		t.Errorf("missing fanout root span: %s", b.String())
	}
}
