package iva

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenMissingStore(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Fatal("Open of missing store succeeded")
	}
}

func TestOpenRequiresDirectory(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open with empty dir succeeded")
	}
}

func TestOpenCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Insert(Row{"a": Num(1)})
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, "catalog.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with corrupt catalog succeeded")
	}
}

func TestOpenCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Insert(Row{"a": Num(1)})
	st.Close()
	if err := os.WriteFile(filepath.Join(dir, "iva.idx"), make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with zeroed index succeeded")
	}
}

func TestDeleteUnknownTID(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	if err := st.Delete(12345); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := st.Update(12345, Row{"a": Num(1)}); err != ErrNotFound {
		t.Fatalf("update err = %v, want ErrNotFound", err)
	}
	if _, err := st.Get(12345); err != ErrNotFound {
		t.Fatalf("get err = %v, want ErrNotFound", err)
	}
}

func TestQueryBuilderErrorSurfacing(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	st.Insert(Row{"a": Num(1)})
	// The builder records the error; Search must report it.
	q := NewQuery(1).WhereNumWeighted("a", 1, -5)
	if _, _, err := st.Search(q); err == nil {
		t.Fatal("negative weight not surfaced")
	}
}

func TestManyAttributesOneTuple(t *testing.T) {
	// A tuple may define hundreds of attributes (wide but not sparse).
	st, _ := Create("", Options{})
	defer st.Close()
	row := Row{}
	for i := 0; i < 300; i++ {
		row[attrName(i)] = Num(float64(i))
	}
	tid, err := st.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(tid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("round-tripped %d attributes", len(got))
	}
}

func attrName(i int) string {
	return "attr" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
}

func TestStoreScan(t *testing.T) {
	st, _ := Create("", Options{CleanThreshold: -1})
	defer st.Close()
	var tids []TID
	for i := 0; i < 20; i++ {
		tid, err := st.Insert(Row{"n": Num(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	st.Delete(tids[3])
	st.Delete(tids[7])

	seen := map[TID]float64{}
	if err := st.Scan(func(tid TID, row Row) bool {
		seen[tid] = row["n"].Float()
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 18 {
		t.Fatalf("scanned %d live tuples, want 18", len(seen))
	}
	if _, ok := seen[tids[3]]; ok {
		t.Fatal("deleted tuple scanned")
	}
	if seen[tids[5]] != 5 {
		t.Fatalf("tuple 5 value %v", seen[tids[5]])
	}
	// Early stop.
	count := 0
	st.Scan(func(TID, Row) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestCloseIdempotent(t *testing.T) {
	st, _ := Create("", Options{})
	st.Insert(Row{"a": Num(1)})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestGrowthRebuildRestoresFilterPower is the regression test for a real
// bug: a store grown from empty used to keep numeric quantizers with the
// degenerate [0,0] domain created at first insert, so numeric lower bounds
// were always 0 and every tuple was fetched. The growth-rebuild policy
// (§III-C's periodic renewal) re-derives the relative domains.
func TestGrowthRebuildRestoresFilterPower(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	rng := rand.New(rand.NewSource(9))
	brands := []string{"canon", "nikon", "sony", "olympus", "pentax", "leica"}
	for i := 0; i < 2000; i++ {
		// Prices uncorrelated with insertion order: tid-ordered scans over
		// data sorted by the queried attribute are Algorithm 1's worst case
		// (the pool bar trails each tuple's estimate), which is a property
		// of the workload, not of the quantizer this test guards.
		if _, err := st.Insert(Row{
			"brand": Strings(brands[i%len(brands)]),
			"price": Num(float64(150 + rng.Intn(2000))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Rebuilds == 0 {
		t.Fatal("growth policy never rebuilt")
	}
	_, stats, err := st.Search(NewQuery(5).
		WhereText("brand", "cannon").
		WhereNum("price", 800))
	if err != nil {
		t.Fatal(err)
	}
	if stats.TableAccesses > stats.Scanned/4 {
		t.Fatalf("filtering power lost: fetched %d of %d", stats.TableAccesses, stats.Scanned)
	}
	ex, err := st.Explain(NewQuery(5).WhereNum("price", 800))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Terms[0].MaxEst == 0 {
		t.Fatal("numeric lower bounds are all zero: degenerate quantizer domain")
	}
}
