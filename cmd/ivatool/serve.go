package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/sparsewide/iva"
)

// serveMux mounts the store's observability endpoints:
//
//	/metrics         Prometheus text exposition (text/plain; version=0.0.4)
//	/healthz         the scrub scheduler's verdict (ok/degraded/damaged) when
//	                 a scrubber runs; otherwise runs Store.Check, 200 "ok" or
//	                 503 with the problems
//	/debug/querylog  the slow-query log: JSON (default) or ?format=text
//	/debug/trace     the sampled trace ring + histogram exemplars as JSON;
//	                 ?id=<trace_id> fetches one retained trace
//	/debug/pprof     the runtime profiler, only when enablePprof is set
func serveMux(st *iva.Store, sc *iva.Scrubber, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := st.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if sc != nil {
			sc.ServeHealthz(w, r)
			return
		}
		rep, err := st.Check()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !rep.Ok() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, p := range rep.Problems {
				fmt.Fprintf(w, "PROBLEM: %s\n", p)
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/querylog", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := st.WriteSlowQueriesText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			if err := st.WriteSlowQueries(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			tr := st.FindTrace(id)
			if tr == nil {
				http.Error(w, "trace not retained", http.StatusNotFound)
				return
			}
			blob, err := tr.MarshalJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(append(blob, '\n'))
			return
		}
		if err := st.WriteTraces(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if enablePprof {
		// Registered by hand on the private mux: importing net/http/pprof
		// only touches http.DefaultServeMux, which is never served here, so
		// the profiler is reachable solely behind the -pprof flag.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// serve blocks on an HTTP listener exposing the store. A positive scrub
// interval starts the background scrub scheduler for the server's lifetime.
func serve(st *iva.Store, addr string, enablePprof bool, scrubEvery time.Duration) error {
	var sc *iva.Scrubber
	if scrubEvery > 0 {
		sc = st.StartScrubber(iva.ScrubberOptions{Interval: scrubEvery})
		defer sc.Stop()
	}
	endpoints := "/metrics, /healthz, /debug/querylog, /debug/trace"
	if enablePprof {
		endpoints += ", /debug/pprof"
	}
	fmt.Printf("serving %s on %s\n", endpoints, addr)
	return http.ListenAndServe(addr, serveMux(st, sc, enablePprof))
}
