package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/repl"
	"github.com/sparsewide/iva/internal/server"
)

// serveMux mounts the query API and the store's observability endpoints:
//
//	/v1/search       POST, JSON top-k search (see internal/server); admission-
//	/v1/get          controlled per tenant (X-Iva-Tenant header)
//	/v1/stats        store + server shape as JSON
//	/metrics         Prometheus text exposition (text/plain; version=0.0.4);
//	                 store families followed by iva_server_* families
//	/healthz         the scrub scheduler's verdict (ok/degraded/damaged) when
//	                 a scrubber runs; otherwise runs Store.Check, 200 "ok" or
//	                 503 with the problems
//	/debug/querylog  the slow-query log: JSON (default) or ?format=text
//	/debug/trace     the sampled trace ring + histogram exemplars as JSON;
//	                 ?id=<trace_id> fetches one retained trace
//	/debug/pprof     the runtime profiler, only when enablePprof is set
func serveMux(st *iva.Store, sc *iva.Scrubber, api *server.Server, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	if api != nil {
		api.Register(mux)
		// Replication plane: snapshot/delta serving (primaries) and the raw
		// file-range fetch any on-disk store can answer for a peer's
		// read-repair.
		api.RegisterRepl(mux, st)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := st.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// The server keeps its own registry; its families are disjoint from
		// the store's, so the expositions concatenate into one valid page.
		if api != nil {
			if err := api.WriteMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Replication verdict first: a follower that cannot reach its primary
		// or trails it badly is degraded regardless of local integrity.
		rs := st.ReplStatus()
		if rs.Role == "follower" && (rs.LastError != "" || rs.LagGenerations > replLagDegraded) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded")
			writeReplLine(w, rs)
			return
		}
		if sc != nil {
			sc.ServeHealthz(w, r)
			writeReplLine(w, rs)
			return
		}
		rep, err := st.Check()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !rep.Ok() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, p := range rep.Problems {
				fmt.Fprintf(w, "PROBLEM: %s\n", p)
			}
			writeReplLine(w, rs)
			return
		}
		fmt.Fprintln(w, "ok")
		writeReplLine(w, rs)
	})
	mux.HandleFunc("/debug/querylog", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := st.WriteSlowQueriesText(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			if err := st.WriteSlowQueries(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format (want json or text)", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			tr := st.FindTrace(id)
			if tr == nil {
				http.Error(w, "trace not retained", http.StatusNotFound)
				return
			}
			blob, err := tr.MarshalJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(append(blob, '\n'))
			return
		}
		if err := st.WriteTraces(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if enablePprof {
		// Registered by hand on the private mux: importing net/http/pprof
		// only touches http.DefaultServeMux, which is never served here, so
		// the profiler is reachable solely behind the -pprof flag.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// replLagDegraded is the generation lag beyond which a follower's /healthz
// reports degraded.
const replLagDegraded = 8

// writeReplLine appends the replication verdict line to a healthz body.
func writeReplLine(w http.ResponseWriter, rs iva.ReplStatus) {
	if rs.Role == "none" {
		return
	}
	fmt.Fprintf(w, "replication: role=%s epoch=%d gen=%d", rs.Role, rs.Epoch, rs.Gen)
	if rs.Role == "follower" {
		fmt.Fprintf(w, " primary_gen=%d lag=%d", rs.PrimaryGen, rs.LagGenerations)
		if rs.LastError != "" {
			fmt.Fprintf(w, " last_error=%q", rs.LastError)
		}
	}
	fmt.Fprintln(w)
}

// gracefulServe serves hs on ln until a signal arrives, then drains the query
// service — in-flight searches finish, new arrivals shed with 503 — and shuts
// the listener down. Split from serve so tests can drive the drain with their
// own listener and signal channel.
func gracefulServe(hs *http.Server, ln net.Listener, api *server.Server, drainTimeout time.Duration, sig <-chan os.Signal) error {
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		if _, ok := <-sig; !ok {
			return // channel closed without a signal: plain shutdown elsewhere
		}
		fmt.Fprintf(os.Stderr, "ivatool: signal received, draining (timeout %v)\n", drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := api.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ivatool: %v\n", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
		}
	}()
	err := hs.Serve(ln)
	if err == http.ErrServerClosed {
		<-idle
		return nil
	}
	return err
}

// serve runs the query service plus observability endpoints until SIGTERM or
// SIGINT, then drains gracefully. A positive scrub interval starts the
// background scrub scheduler for the server's lifetime.
func serve(st *iva.Store, sv serveOpts) error {
	if sv.follow == "" {
		// Any served store is a potential primary: cut synced-prefix deltas
		// so followers can attach at will.
		if err := st.EnableReplSource(); err != nil {
			return err
		}
	}
	if sv.peer != "" {
		// Corrupt index segments heal from this peer (a follower already
		// repairs from its primary without the flag).
		st.SetRepairPeer(repl.NewClient(sv.peer, 0))
	}
	var sc *iva.Scrubber
	if sv.scrubEvery > 0 {
		sc = st.StartScrubber(iva.ScrubberOptions{Interval: sv.scrubEvery})
		defer sc.Stop()
	}
	api := server.New(st, nil, server.Config{
		QPS:            sv.qps,
		Burst:          sv.burst,
		MaxConcurrent:  sv.maxConcurrent,
		MaxQueue:       sv.maxQueue,
		DefaultTimeout: sv.reqTimeout,
	})
	ln, err := net.Listen("tcp", sv.addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sig)
	endpoints := "/v1/search, /v1/get, /v1/stats, /v1/repl/{snapshot,deltas,segment}, /metrics, /healthz, /debug/querylog, /debug/trace"
	if sv.pprof {
		endpoints += ", /debug/pprof"
	}
	fmt.Printf("serving %s on %s\n", endpoints, ln.Addr())
	hs := &http.Server{Handler: serveMux(st, sc, api, sv.pprof)}
	return gracefulServe(hs, ln, api, sv.drainTimeout, sig)
}
