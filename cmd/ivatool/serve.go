package main

import (
	"fmt"
	"net/http"

	"github.com/sparsewide/iva"
)

// serveMux mounts the store's observability endpoints:
//
//	/metrics         Prometheus text exposition (text/plain; version=0.0.4)
//	/healthz         runs Store.Check, 200 "ok" or 503 with the problems
//	/debug/querylog  the slow-query log as JSON, newest first
func serveMux(st *iva.Store) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := st.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		rep, err := st.Check()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !rep.Ok() {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, p := range rep.Problems {
				fmt.Fprintf(w, "PROBLEM: %s\n", p)
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/querylog", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := st.WriteSlowQueries(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// serve blocks on an HTTP listener exposing the store.
func serve(st *iva.Store, addr string) error {
	fmt.Printf("serving /metrics, /healthz, /debug/querylog on %s\n", addr)
	return http.ListenAndServe(addr, serveMux(st))
}
