package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sparsewide/iva"
)

func TestSplitPair(t *testing.T) {
	cases := []struct {
		in      string
		a, v    string
		wantErr bool
	}{
		{"Price=230", "Price", "230", false},
		{"Type=Digital Camera", "Type", "Digital Camera", false},
		{"a=b=c", "a", "b=c", false},
		{"=x", "", "", true},
		{"x=", "", "", true},
		{"novalue", "", "", true},
	}
	for _, c := range cases {
		a, v, err := splitPair(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("splitPair(%q) err = %v", c.in, err)
			continue
		}
		if err == nil && (a != c.a || v != c.v) {
			t.Errorf("splitPair(%q) = %q,%q", c.in, a, v)
		}
	}
}

func TestParseRow(t *testing.T) {
	row, err := parseRow([]string{
		"Price=230", "Industry=Computer", "Industry=Software", "Company=Canon",
	})
	if err != nil {
		t.Fatal(err)
	}
	if row["Price"].Kind() != iva.Numeric || row["Price"].Float() != 230 {
		t.Fatalf("Price = %v", row["Price"])
	}
	if got := row["Industry"].Texts(); len(got) != 2 {
		t.Fatalf("Industry = %v, want two strings", got)
	}
	if _, err := parseRow(nil); err == nil {
		t.Fatal("empty row accepted")
	}
	if _, err := parseRow([]string{"bad"}); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

func TestRunLifecycle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	opts := iva.Options{Metric: "L2", Weights: "EQU"}
	if err := run("create", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("insert", []string{"Type=Camera", "Price=230"}, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("query", []string{"Type=Camera", "Price=200"}, dir, 5, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("explain", []string{"Type=Camera", "Price=200"}, dir, 5, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("get", []string{"0"}, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("stats", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("rebuild", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("check", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("attrs", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("delete", []string{"0"}, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("get", []string{"0"}, dir, 10, serveOpts{}, opts); err == nil {
		t.Fatal("get of deleted tuple succeeded")
	}
	if err := run("frobnicate", nil, dir, 10, serveOpts{}, opts); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run("get", []string{"notanumber"}, dir, 10, serveOpts{}, opts); err == nil {
		t.Fatal("bad tid accepted")
	}
}

// TestValidateFlags: values that used to pass silently into the store (a
// k <= 0 query, negative durations) are now usage errors, and every serve
// admission limit is checked.
func TestValidateFlags(t *testing.T) {
	good := serveOpts{scrubEvery: 10 * time.Minute, reqTimeout: 2 * time.Second, drainTimeout: 30 * time.Second}
	if err := validateFlags(10, 250*time.Millisecond, good); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	cases := []struct {
		name string
		k    int
		slow time.Duration
		sv   serveOpts
	}{
		{"k zero", 0, 0, good},
		{"k negative", -3, 0, good},
		{"negative slow", 10, -time.Second, good},
		{"negative scrub-interval", 10, 0, serveOpts{scrubEvery: -time.Minute, drainTimeout: time.Second}},
		{"negative qps", 10, 0, serveOpts{qps: -1, drainTimeout: time.Second}},
		{"negative burst", 10, 0, serveOpts{burst: -1, drainTimeout: time.Second}},
		{"negative max-concurrent", 10, 0, serveOpts{maxConcurrent: -1, drainTimeout: time.Second}},
		{"negative max-queue", 10, 0, serveOpts{maxQueue: -2, drainTimeout: time.Second}},
		{"negative request-timeout", 10, 0, serveOpts{reqTimeout: -time.Second, drainTimeout: time.Second}},
		{"zero drain-timeout", 10, 0, serveOpts{}},
	}
	for _, c := range cases {
		if err := validateFlags(c.k, c.slow, c.sv); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDemo(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "demo")
	opts := iva.Options{}
	if err := run("demo", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("query", []string{"Type=Digital Camera", "Company=Canon"}, dir, 3, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
}

// TestServeArgParsing: serve flags given after the subcommand must be
// honored, not silently dropped — a trailing -follow that went unparsed
// would bring a replica up as an independent primary.
func TestServeArgParsing(t *testing.T) {
	opts := iva.Options{Metric: "L2", Weights: "EQU"}
	fresh := filepath.Join(t.TempDir(), "replica")
	// Port 1 refuses connections: the error must come from the follower
	// bootstrap (proving -follow was parsed), not from opening the empty
	// dir as a regular store.
	err := run("serve", []string{"-follow", "http://127.0.0.1:1"}, fresh, 10, serveOpts{drainTimeout: time.Second, poll: time.Second}, opts)
	if err == nil {
		t.Fatal("serve -follow against a dead primary succeeded")
	}
	if !strings.Contains(err.Error(), "bootstrap follower") {
		t.Fatalf("error did not come from the follower bootstrap: %v", err)
	}
	if err := run("serve", []string{"stray"}, fresh, 10, serveOpts{drainTimeout: time.Second, poll: time.Second}, opts); err == nil {
		t.Fatal("stray serve argument accepted")
	}
	if err := run("serve", []string{"-poll", "-1s"}, fresh, 10, serveOpts{drainTimeout: time.Second, poll: time.Second}, opts); err == nil {
		t.Fatal("negative -poll after subcommand accepted")
	}
}
