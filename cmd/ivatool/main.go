// Command ivatool creates, populates, inspects and queries iVA-file stores
// on disk through the public API.
//
// Usage:
//
//	ivatool -dir DIR create
//	ivatool -dir DIR insert '<attr>=<value>' [...]      # value: number or text
//	ivatool -dir DIR query [-profile] '<attr>=<value>' [...]
//	ivatool -dir DIR get <tid>
//	ivatool -dir DIR delete <tid>
//	ivatool -dir DIR stats [-strict]                     # -strict exits non-zero on recorded scrub damage
//	ivatool -dir DIR rebuild
//	ivatool -dir DIR check -checksums -deep -seed 7      # integrity check (+ checksum sweep, differential oracle)
//	ivatool -dir DIR scrub -repair                       # verify every checksum; -repair rebuilds from a clean table
//	ivatool -dir DIR demo                                # load a small product catalog
//	ivatool -dir DIR -addr :9090 serve                   # query API (/v1/search, /v1/get, /v1/stats) plus
//	                                                     # /metrics, /healthz, /debug/querylog, /debug/trace
//	                                                     # (-pprof adds /debug/pprof; -scrub-interval paces the
//	                                                     #  background scrubber, 0 disables it; -qps/-burst/
//	                                                     #  -max-concurrent/-max-queue set per-tenant admission
//	                                                     #  limits; SIGTERM drains gracefully within -drain-timeout)
//
// Attribute values that parse as numbers are numeric; everything else is
// text. Multiple strings for one text attribute repeat the attribute:
// 'Industry=Computer' 'Industry=Software'.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/oracle"
)

// exitCodeError carries a specific process exit status through run; main
// unwraps it with errors.As. Without one, any error exits 1.
type exitCodeError struct {
	code int
	err  error
}

func (e *exitCodeError) Error() string { return e.err.Error() }
func (e *exitCodeError) Unwrap() error { return e.err }

func main() {
	var (
		dir        = flag.String("dir", "", "store directory (required)")
		k          = flag.Int("k", 10, "top-k for queries")
		metricF    = flag.String("metric", "L2", "distance metric: L1, L2, Linf")
		weights    = flag.String("weights", "EQU", "attribute weights: EQU, ITF")
		addr       = flag.String("addr", "127.0.0.1:9090", "listen address for serve")
		slow       = flag.Duration("slow", 250*time.Millisecond, "slow-query log threshold for serve")
		pprofFlag  = flag.Bool("pprof", false, "expose /debug/pprof on serve (off by default; see README security note)")
		scrubEvery = flag.Duration("scrub-interval", 10*time.Minute, "background scrub cycle target for serve (0 disables)")
		qps        = flag.Float64("qps", 0, "per-tenant sustained query quota for serve (0 = unlimited)")
		burst      = flag.Int("burst", 0, "per-tenant quota burst for serve (0 = auto from -qps)")
		maxConc    = flag.Int("max-concurrent", 0, "per-tenant concurrent search cap for serve (0 = 2x GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", 0, "per-tenant admission queue bound for serve (0 = 4x cap)")
		reqTimeout = flag.Duration("request-timeout", 2*time.Second, "default per-request deadline for serve")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM for serve")
		follow     = flag.String("follow", "", "serve as a read-only follower replicating from this primary URL")
		peer       = flag.String("peer", "", "replication peer URL corrupt index segments are read-repaired from (serve; implied by -follow)")
		poll       = flag.Duration("poll", time.Second, "follower delta poll interval when caught up (with -follow)")
	)
	flag.Parse()
	args := flag.Args()
	if *dir == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ivatool -dir DIR <create|insert|query|get|delete|stats|rebuild|check|scrub|demo|serve> ...")
		os.Exit(2)
	}
	opts := iva.Options{Metric: *metricF, Weights: *weights, SlowQueryThreshold: *slow}
	sv := serveOpts{
		addr: *addr, pprof: *pprofFlag, scrubEvery: *scrubEvery,
		qps: *qps, burst: *burst, maxConcurrent: *maxConc, maxQueue: *maxQueue,
		reqTimeout: *reqTimeout, drainTimeout: *drainT,
		follow: *follow, peer: *peer, poll: *poll,
	}
	if err := validateFlags(*k, *slow, sv); err != nil {
		fmt.Fprintf(os.Stderr, "ivatool: %v\n", err)
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	if err := run(cmd, rest, *dir, *k, sv, opts); err != nil {
		fmt.Fprintf(os.Stderr, "ivatool: %v\n", err)
		code := 1
		var ec *exitCodeError
		if errors.As(err, &ec) {
			code = ec.code
		}
		os.Exit(code)
	}
}

// serveOpts carries the serve-only flags through run.
type serveOpts struct {
	addr          string
	pprof         bool
	scrubEvery    time.Duration
	qps           float64
	burst         int
	maxConcurrent int
	maxQueue      int
	reqTimeout    time.Duration
	drainTimeout  time.Duration
	follow        string
	peer          string
	poll          time.Duration
}

// validateFlags rejects flag values that would previously pass silently into
// the store or server: a k <= 0 query only errors deep inside the engine, a
// negative -slow captures every query in the slow log, and a negative
// -scrub-interval or admission limit has no sane meaning.
func validateFlags(k int, slow time.Duration, sv serveOpts) error {
	switch {
	case k <= 0:
		return fmt.Errorf("-k must be positive, got %d", k)
	case slow < 0:
		return fmt.Errorf("-slow must be non-negative, got %v", slow)
	case sv.scrubEvery < 0:
		return fmt.Errorf("-scrub-interval must be non-negative, got %v", sv.scrubEvery)
	case sv.qps < 0:
		return fmt.Errorf("-qps must be non-negative, got %v", sv.qps)
	case sv.burst < 0:
		return fmt.Errorf("-burst must be non-negative, got %d", sv.burst)
	case sv.maxConcurrent < 0:
		return fmt.Errorf("-max-concurrent must be non-negative, got %d", sv.maxConcurrent)
	case sv.maxQueue < 0:
		return fmt.Errorf("-max-queue must be non-negative, got %d", sv.maxQueue)
	case sv.reqTimeout < 0:
		return fmt.Errorf("-request-timeout must be non-negative, got %v", sv.reqTimeout)
	case sv.drainTimeout <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %v", sv.drainTimeout)
	case sv.poll < 0:
		return fmt.Errorf("-poll must be non-negative, got %v", sv.poll)
	}
	return nil
}

func run(cmd string, args []string, dir string, k int, sv serveOpts, opts iva.Options) error {
	switch cmd {
	case "create":
		st, err := iva.Create(dir, opts)
		if err != nil {
			return err
		}
		defer st.Close()
		fmt.Printf("created store in %s\n", dir)
		return nil
	case "demo":
		st, err := iva.Create(dir, opts)
		if err != nil {
			return err
		}
		defer st.Close()
		return demo(st)
	}

	// The serve-only flags are also accepted after the subcommand, where
	// operators expect them (`ivatool -dir DIR serve -follow URL`). The
	// global flag parse stops at "serve", so without this re-parse a trailing
	// -follow would be silently ignored and the replica would come up as an
	// independent primary.
	if cmd == "serve" {
		fs := flag.NewFlagSet("serve", flag.ContinueOnError)
		fs.StringVar(&sv.addr, "addr", sv.addr, "listen address")
		fs.StringVar(&sv.follow, "follow", sv.follow, "replicate as a read-only follower from this primary URL")
		fs.StringVar(&sv.peer, "peer", sv.peer, "read-repair peer URL (implied by -follow)")
		fs.DurationVar(&sv.poll, "poll", sv.poll, "follower delta poll interval when caught up")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("serve: unexpected arguments %q", fs.Args())
		}
		if sv.poll < 0 {
			return fmt.Errorf("-poll must be non-negative, got %v", sv.poll)
		}
	}

	// A follower replica bootstraps or crash-recovers from its primary before
	// opening, so it cannot go through the generic Open below.
	if cmd == "serve" && sv.follow != "" {
		st, err := iva.OpenFollower(dir, sv.follow, iva.FollowerOptions{Poll: sv.poll}, opts)
		if err != nil {
			return err
		}
		defer st.Close()
		return serve(st, sv)
	}

	st, err := iva.Open(dir, opts)
	if err != nil {
		return err
	}
	defer st.Close()

	switch cmd {
	case "insert":
		row, err := parseRow(args)
		if err != nil {
			return err
		}
		tid, err := st.Insert(row)
		if err != nil {
			return err
		}
		fmt.Printf("inserted tuple %d\n", tid)
	case "query":
		fs := flag.NewFlagSet("query", flag.ContinueOnError)
		profile := fs.Bool("profile", false, "print the executed plan's per-phase profile (EXPLAIN ANALYZE)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		q := iva.NewQuery(k)
		for _, a := range fs.Args() {
			attr, val, err := splitPair(a)
			if err != nil {
				return err
			}
			if f, ferr := strconv.ParseFloat(val, 64); ferr == nil {
				q.WhereNum(attr, f)
			} else {
				q.WhereText(attr, val)
			}
		}
		if *profile {
			res, prof, err := st.SearchProfiled(q)
			if err != nil {
				return err
			}
			for _, r := range res {
				row, err := st.Get(r.TID)
				if err != nil {
					return err
				}
				fmt.Printf("tid=%d dist=%.3f %s\n", r.TID, r.Dist, formatRow(row))
			}
			fmt.Print(prof.Render())
			return nil
		}
		res, stats, err := st.Search(q)
		if err != nil {
			return err
		}
		for _, r := range res {
			row, err := st.Get(r.TID)
			if err != nil {
				return err
			}
			fmt.Printf("tid=%d dist=%.3f %s\n", r.TID, r.Dist, formatRow(row))
		}
		fmt.Printf("(scanned %d, table accesses %d, filter %v, refine %v)\n",
			stats.Scanned, stats.TableAccesses, stats.FilterTime, stats.RefineTime)
	case "explain":
		q := iva.NewQuery(k)
		for _, a := range args {
			attr, val, err := splitPair(a)
			if err != nil {
				return err
			}
			if f, ferr := strconv.ParseFloat(val, 64); ferr == nil {
				q.WhereNum(attr, f)
			} else {
				q.WhereText(attr, val)
			}
		}
		ex, err := st.Explain(q)
		if err != nil {
			return err
		}
		fmt.Printf("scanned %d, fetched %d (%.2f%%), pool bar %.3f\n",
			ex.Scanned, ex.Fetched, 100*float64(ex.Fetched)/float64(max(ex.Scanned, 1)), ex.PoolMaxFinal)
		for _, te := range ex.Terms {
			fmt.Printf("  %-20s %-8s type %-3s alpha %.0f%%  defined %-6d ndf %-6d est[%.2f..%.2f] mean %.2f tight %.2f\n",
				te.Attr, te.Kind, te.ListType, te.Alpha*100,
				te.Defined, te.NDF, te.MinEst, te.MaxEst, te.MeanEst, te.Tightness)
		}
	case "get":
		tid, err := parseTID(args)
		if err != nil {
			return err
		}
		row, err := st.Get(tid)
		if err != nil {
			return err
		}
		fmt.Println(formatRow(row))
	case "delete":
		tid, err := parseTID(args)
		if err != nil {
			return err
		}
		if err := st.Delete(tid); err != nil {
			return err
		}
		fmt.Printf("deleted tuple %d\n", tid)
	case "stats":
		return stats(st, dir, args)
	case "serve":
		return serve(st, sv)
	case "rebuild":
		if err := st.Rebuild(); err != nil {
			return err
		}
		fmt.Println("rebuilt table and index files")
	case "check":
		return check(st, args)
	case "scrub":
		return scrub(st, dir, args)
	case "attrs":
		for _, a := range st.Attrs() {
			if a.DF == 0 {
				continue
			}
			fmt.Printf("%-24s %-8s type %-3s alpha %.0f%%  df %-6d strs %-6d %d bits  codec %s\n",
				a.Name, a.Kind, a.ListType, a.Alpha*100, a.DF, a.Strings, a.Bits, a.Codec)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// stats prints the store's shape and, when a scrub report has been persisted
// (by `ivatool scrub` or a background scrubber), the last sweep's age and
// per-shard damage. With -strict, recorded damage (or a damaged/degraded
// health verdict) exits non-zero so cron jobs can alert on it.
func stats(st *iva.Store, dir string, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	strict := fs.Bool("strict", false, "exit non-zero when the persisted scrub report records damage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := st.Stats()
	fmt.Printf("tuples      %d\n", s.Tuples)
	fmt.Printf("deleted     %d\n", s.Deleted)
	fmt.Printf("attributes  %d\n", s.Attributes)
	fmt.Printf("table bytes %d\n", s.TableBytes)
	fmt.Printf("index bytes %d\n", s.IndexBytes)
	fmt.Printf("rebuilds    %d\n", s.Rebuilds)
	fmt.Printf("cache hits  %d (%.1f%% hit rate)\n", s.IO.CacheHits, 100*s.IO.HitRate())
	fmt.Printf("phys reads  %d (seq %d near %d rand %d)\n",
		s.IO.PhysReads, s.IO.SeqReads, s.IO.NearReads, s.IO.RandReads)
	fmt.Printf("phys writes %d\n", s.IO.PhysWrites)
	zstate := "on"
	if !s.ZoneMapsOn {
		zstate = "off"
	}
	coverage := 0.0
	if s.ZoneSealed > 0 {
		coverage = 100 * float64(s.ZoneKnown) / float64(s.ZoneSealed)
	}
	fmt.Printf("zone maps   %s, coverage %d/%d sealed stripes (%.1f%%)", zstate, s.ZoneKnown, s.ZoneSealed, coverage)
	if s.ZoneDropped > 0 {
		fmt.Printf(", dropped %d", s.ZoneDropped)
	}
	fmt.Println()
	pruneRatio := 0.0
	if s.ZoneChecked > 0 {
		pruneRatio = 100 * float64(s.ZonePruned) / float64(s.ZoneChecked)
	}
	fmt.Printf("zone prune  %d/%d stripes this session (%.1f%%)\n", s.ZonePruned, s.ZoneChecked, pruneRatio)
	packed, blocks := 0, 0
	attrs := st.Attrs()
	for _, a := range attrs {
		if a.Codec != "raw" {
			packed++
			blocks += a.Blocks
		}
	}
	if packed > 0 {
		fmt.Printf("codec       packed (%d/%d lists, %d sealed blocks)\n", packed, len(attrs), blocks)
	} else {
		fmt.Printf("codec       raw\n")
	}
	// Replication role and cursor, from the durable state files (a live
	// follower's lag shows at its /healthz and /v1/stats; offline, only the
	// applied generation is knowable).
	if rs, ok := iva.ReadReplState(dir); ok {
		fmt.Printf("replication role=%s epoch=%d gen=%d", rs.Role, rs.Epoch, rs.Gen)
		if live := st.ReplStatus(); live.Role == "follower" {
			fmt.Printf(" lag=%d", live.LagGenerations)
		}
		fmt.Println()
	}

	snap, err := iva.LoadScrubReport(filepath.Join(dir, "scrub-report.json"))
	if os.IsNotExist(err) {
		fmt.Printf("scrub       never (no scrub report)\n")
		if *strict {
			return fmt.Errorf("stats -strict: no scrub report recorded")
		}
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("scrub       %s ago, health=%s\n", time.Since(snap.Time).Round(time.Second), snap.Health)
	damaged := 0
	for _, sh := range snap.Shards {
		if sh.Report == nil {
			fmt.Printf("  shard %d: not yet swept\n", sh.Shard)
			continue
		}
		bad := sh.Report.CorruptIndexSegments + sh.Report.CorruptCheckpoints + sh.Report.CorruptTable
		fmt.Printf("  shard %d: swept %s ago, degraded segments %d, corrupt checkpoints %d, corrupt table records %d\n",
			sh.Shard, time.Since(sh.LastSweep).Round(time.Second),
			sh.Report.CorruptIndexSegments, sh.Report.CorruptCheckpoints, sh.Report.CorruptTable)
		if bad > 0 || sh.Err != "" {
			damaged++
		}
	}
	if *strict && (snap.Health == "damaged" || damaged > 0) {
		return fmt.Errorf("stats -strict: scrub recorded damage on %d shard(s) (health=%s)", damaged, snap.Health)
	}
	return nil
}

// check runs the structural integrity check and, with -checksums, the
// store-wide checksum sweep, and with -deep, the differential oracle. It
// always emits one machine-readable summary line (`check: status=...
// problems=N`) so scripts can grep the outcome, and returns a non-nil error
// — hence exit status 1 — on any failure.
func check(st *iva.Store, args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	sums := fs.Bool("checksums", false, "also verify every committed checksum (see scrub)")
	deep := fs.Bool("deep", false, "also run the differential oracle in a scratch directory")
	seed := fs.Uint64("seed", 0x1fa5eed, "oracle workload seed (with -deep)")
	ops := fs.Int("ops", 2000, "oracle operation count (with -deep)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := st.Check()
	if err != nil {
		fmt.Printf("check: status=error entries=0 live=0 attributes=0 vectors=0 problems=0\n")
		return err
	}
	status := "ok"
	if !rep.Ok() {
		status = "fail"
	}
	fmt.Printf("check: status=%s entries=%d live=%d attributes=%d vectors=%d problems=%d\n",
		status, rep.Entries, rep.Live, rep.Attributes, rep.VectorElems, len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM: %s\n", p)
	}
	if !rep.Ok() {
		return fmt.Errorf("%d problems found", len(rep.Problems))
	}
	if *sums {
		srep, err := st.Scrub()
		if err != nil {
			return err
		}
		printScrub(srep)
		if !srep.Clean() {
			return fmt.Errorf("%d checksum problems found", len(srep.Problems))
		}
	}
	if !*deep {
		return nil
	}
	scratch, err := os.MkdirTemp("", "ivatool-oracle-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	res, oerr := oracle.Run(oracle.Options{
		Seed: *seed,
		Ops:  *ops,
		Dir:  scratch,
		Logf: func(format string, a ...interface{}) {
			fmt.Printf(format+"\n", a...)
		},
	})
	dstatus := "ok"
	if oerr != nil {
		dstatus = "fail"
	}
	fmt.Printf("check: deep=%s seed=%d ops=%d searches=%d comparisons=%d reopens=%d rebuilds=%d\n",
		dstatus, *seed, res.Ops, res.Searches, res.Comparisons, res.Reopens, res.Rebuilds)
	return oerr
}

func parseTID(args []string) (iva.TID, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("expected one tuple id")
	}
	v, err := strconv.ParseUint(args[0], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad tuple id %q", args[0])
	}
	return iva.TID(v), nil
}

func splitPair(s string) (attr, val string, err error) {
	i := strings.IndexByte(s, '=')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("bad pair %q, want attr=value", s)
	}
	return s[:i], s[i+1:], nil
}

// parseRow folds attr=value pairs; repeated text attributes accumulate
// strings into one multi-string value.
func parseRow(args []string) (iva.Row, error) {
	texts := map[string][]string{}
	nums := map[string]float64{}
	for _, a := range args {
		attr, val, err := splitPair(a)
		if err != nil {
			return nil, err
		}
		if f, ferr := strconv.ParseFloat(val, 64); ferr == nil {
			nums[attr] = f
		} else {
			texts[attr] = append(texts[attr], val)
		}
	}
	row := iva.Row{}
	for a, v := range nums {
		row[a] = iva.Num(v)
	}
	for a, ss := range texts {
		row[a] = iva.Strings(ss...)
	}
	if len(row) == 0 {
		return nil, fmt.Errorf("no attr=value pairs given")
	}
	return row, nil
}

func formatRow(row iva.Row) string {
	parts := make([]string, 0, len(row))
	for name, v := range row {
		parts = append(parts, fmt.Sprintf("%s=%s", name, v))
	}
	return strings.Join(parts, " ")
}

// demo loads the paper's Fig. 1 examples plus a few products.
func demo(st *iva.Store) error {
	rows := []iva.Row{
		{"Type": iva.Strings("Job Position"), "Industry": iva.Strings("Computer", "Software"),
			"Company": iva.Strings("Google"), "Salary": iva.Num(1000)},
		{"Type": iva.Strings("Digital Camera"), "Price": iva.Num(230),
			"Company": iva.Strings("Canon"), "Pixel": iva.Num(10000000)},
		{"Type": iva.Strings("Music Album"), "Year": iva.Num(1996),
			"Price": iva.Num(20), "Artist": iva.Strings("Michael Jackson")},
		{"Type": iva.Strings("Digital Camera"), "Price": iva.Num(240), "Company": iva.Strings("Sony")},
		{"Type": iva.Strings("Digital Camera"), "Price": iva.Num(230), "Company": iva.Strings("Cannon")},
	}
	for _, r := range rows {
		if _, err := st.Insert(r); err != nil {
			return err
		}
	}
	fmt.Printf("loaded %d demo tuples; try:\n  ivatool -dir DIR query 'Type=Digital Camera' 'Company=Canon' 'Price=200'\n", len(rows))
	return nil
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
