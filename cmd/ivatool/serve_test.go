package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/sparsewide/iva"
)

// TestServeEndpoints drives a store under load through the HTTP surface:
// /metrics must be valid Prometheus text with the latency histogram, cache
// counters and phase timings; /healthz must pass Check; a slow query must
// surface in /debug/querylog with its per-term trace.
func TestServeEndpoints(t *testing.T) {
	st, err := iva.Create(t.TempDir(), iva.Options{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 200; i++ {
		if _, err := st.Insert(iva.Row{
			"brand": iva.Strings([]string{"canon", "nikon"}[i%2]),
			"price": iva.Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		q := iva.NewQuery(3).WhereText("brand", "cannon").WhereNum("price", float64(120+i))
		if _, _, err := st.Search(q); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(serveMux(st, nil, false))
	defer srv.Close()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp
	}

	metrics, resp := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"iva_query_duration_seconds_bucket{le=",
		"iva_query_duration_seconds_count 5",
		`iva_query_phase_duration_seconds_bucket{phase="filter"`,
		`iva_query_phase_duration_seconds_bucket{phase="refine"`,
		"iva_io_cache_hits_total",
		"iva_io_phys_reads_total",
		"iva_queries_total 5",
		"iva_slow_queries_total 5",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, resp := get("/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(health) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, health)
	}

	qlog, resp := get("/debug/querylog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/querylog status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/querylog content type %q", ct)
	}
	var entries []struct {
		Query      string          `json:"query"`
		DurationMS float64         `json:"duration_ms"`
		Trace      json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(qlog), &entries); err != nil {
		t.Fatalf("/debug/querylog invalid JSON %q: %v", qlog, err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d slow entries, want 5", len(entries))
	}
	for _, want := range []string{`"term:brand"`, `"term:price"`, `"filter"`, `"refine"`} {
		if !strings.Contains(string(entries[0].Trace), want) {
			t.Errorf("querylog trace missing %s", want)
		}
	}
}
