package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/server"
)

// TestServeEndpoints drives a store under load through the HTTP surface:
// /metrics must be valid Prometheus text with the latency histogram, cache
// counters and phase timings; /healthz must pass Check; a slow query must
// surface in /debug/querylog with its per-term trace.
func TestServeEndpoints(t *testing.T) {
	st, err := iva.Create(t.TempDir(), iva.Options{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 200; i++ {
		if _, err := st.Insert(iva.Row{
			"brand": iva.Strings([]string{"canon", "nikon"}[i%2]),
			"price": iva.Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		q := iva.NewQuery(3).WhereText("brand", "cannon").WhereNum("price", float64(120+i))
		if _, _, err := st.Search(q); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(serveMux(st, nil, nil, false))
	defer srv.Close()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp
	}

	metrics, resp := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"iva_query_duration_seconds_bucket{le=",
		"iva_query_duration_seconds_count 5",
		`iva_query_phase_duration_seconds_bucket{phase="filter"`,
		`iva_query_phase_duration_seconds_bucket{phase="refine"`,
		"iva_io_cache_hits_total",
		"iva_io_phys_reads_total",
		"iva_queries_total 5",
		"iva_slow_queries_total 5",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, resp := get("/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(health) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, health)
	}

	qlog, resp := get("/debug/querylog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/querylog status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/querylog content type %q", ct)
	}
	var entries []struct {
		Query      string          `json:"query"`
		DurationMS float64         `json:"duration_ms"`
		Trace      json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(qlog), &entries); err != nil {
		t.Fatalf("/debug/querylog invalid JSON %q: %v", qlog, err)
	}
	if len(entries) != 5 {
		t.Fatalf("%d slow entries, want 5", len(entries))
	}
	for _, want := range []string{`"term:brand"`, `"term:price"`, `"filter"`, `"refine"`} {
		if !strings.Contains(string(entries[0].Trace), want) {
			t.Errorf("querylog trace missing %s", want)
		}
	}
}

// TestServeAPIMux covers the serve wiring with the query API mounted: the
// /v1 endpoints answer through the store, and /metrics exposes the store
// families followed by the iva_server_* families on one page.
func TestServeAPIMux(t *testing.T) {
	st, err := iva.Create(t.TempDir(), iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 50; i++ {
		if _, err := st.Insert(iva.Row{"price": iva.Num(float64(100 + i))}); err != nil {
			t.Fatal(err)
		}
	}
	api := server.New(st, nil, server.Config{})
	srv := httptest.NewServer(serveMux(st, nil, api, false))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/search", "application/json",
		strings.NewReader(`{"k":3,"terms":[{"attr":"price","num":120}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/search status %d", resp.StatusCode)
	}
	var sr server.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 3 {
		t.Fatalf("/v1/search returned %d results, want 3", len(sr.Results))
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"iva_queries_total", "iva_server_requests_total", "iva_server_admitted_total"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q with API mounted", want)
		}
	}
}

// TestGracefulServeDrain drives the real signal path: a signal on the
// channel drains the server (completing a search already past admission) and
// gracefulServe returns cleanly.
func TestGracefulServeDrain(t *testing.T) {
	st, err := iva.Create(t.TempDir(), iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 50; i++ {
		if _, err := st.Insert(iva.Row{"price": iva.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	api := server.New(st, nil, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: serveMux(st, nil, api, false)}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- gracefulServe(hs, ln, api, 5*time.Second, sig) }()

	url := "http://" + ln.Addr().String()
	resp, err := http.Post(url+"/v1/search", "application/json",
		strings.NewReader(`{"k":2,"terms":[{"attr":"price","num":25}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain search status %d", resp.StatusCode)
	}

	sig <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gracefulServe: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gracefulServe never returned after signal")
	}
	if !api.Draining() {
		t.Fatal("server not draining after signal")
	}
}
