package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sparsewide/iva"
)

// TestStatsScrubReport covers the stats command's scrub-report surface:
// without a report it stays informational (but -strict demands one), after a
// scrub it reports age and per-shard counts, and -strict turns recorded
// damage into a non-zero exit.
func TestStatsScrubReport(t *testing.T) {
	dir := t.TempDir()
	opts := iva.Options{}
	if err := run("create", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("insert", []string{"Type=Camera", "Price=230"}, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}

	// Never scrubbed: plain stats pass, -strict refuses.
	if err := run("stats", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatalf("stats without a report: %v", err)
	}
	if err := run("stats", []string{"-strict"}, dir, 10, serveOpts{}, opts); err == nil {
		t.Fatal("stats -strict passed without any scrub report")
	}

	// A clean scrub persists a report both modes accept.
	if err := run("scrub", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	if err := run("stats", []string{"-strict"}, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatalf("stats -strict after a clean scrub: %v", err)
	}

	// Recorded damage (same snapshot format the scrubber and `ivatool
	// scrub` persist) must fail -strict but not plain stats.
	rep := &iva.ScrubReport{}
	rep.CorruptIndexSegments = 2
	snap := iva.ScrubSnapshot{
		Time:   time.Now(),
		Health: "damaged",
		Shards: []iva.ShardScrubStatus{{Shard: 0, LastSweep: time.Now(), Report: rep}},
	}
	if err := iva.SaveScrubReport(filepath.Join(dir, "scrub-report.json"), snap); err != nil {
		t.Fatal(err)
	}
	if err := run("stats", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatalf("plain stats on a damaged report: %v", err)
	}
	err := run("stats", []string{"-strict"}, dir, 10, serveOpts{}, opts)
	if err == nil {
		t.Fatal("stats -strict passed on a damaged scrub report")
	}
	if !strings.Contains(err.Error(), "damage") {
		t.Fatalf("strict failure does not name the damage: %v", err)
	}
}

// TestQueryProfileCommand smoke-tests `ivatool query -profile` end to end.
func TestQueryProfileCommand(t *testing.T) {
	dir := t.TempDir()
	opts := iva.Options{}
	if err := run("create", nil, dir, 10, serveOpts{}, opts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := run("insert", []string{"Type=Camera", "Price=230"}, dir, 10, serveOpts{}, opts); err != nil {
			t.Fatal(err)
		}
	}
	if err := run("query", []string{"-profile", "Type=Camera", "Price=200"}, dir, 5, serveOpts{}, opts); err != nil {
		t.Fatalf("query -profile: %v", err)
	}
}
