package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/server"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// lintExposition parses a Prometheus 0.0.4 text exposition and returns every
// format violation: invalid metric or label names, duplicate HELP/TYPE lines,
// duplicate samples, and unparseable values. This is the in-process metrics
// lint the CI workflow runs.
func lintExposition(text string) []string {
	var problems []string
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	sampleSeen := map[string]bool{}
	for n, line := range strings.Split(text, "\n") {
		lineNo := n + 1
		bad := func(format string, args ...any) {
			problems = append(problems, fmt.Sprintf("line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line))
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line[len("# HELP "):], " ", 2)
			name := fields[0]
			if !metricNameRe.MatchString(name) {
				bad("invalid metric name %q", name)
				continue
			}
			if strings.HasPrefix(line, "# HELP ") {
				if helpSeen[name] {
					bad("duplicate HELP for %s", name)
				}
				helpSeen[name] = true
			} else {
				if _, dup := typeSeen[name]; dup {
					bad("duplicate TYPE for %s", name)
				}
				if len(fields) < 2 {
					bad("TYPE without a kind")
					continue
				}
				typeSeen[name] = fields[1]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		// Sample: name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.LastIndexByte(rest, '}')
			if j < i {
				bad("unterminated label set")
				continue
			}
			name, labels, rest = rest[:i], rest[i:j+1], rest[j+1:]
		} else if i := strings.IndexByte(rest, ' '); i >= 0 {
			name, rest = rest[:i], rest[i:]
		}
		if !metricNameRe.MatchString(name) {
			bad("invalid metric name %q", name)
			continue
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typeSeen[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typeSeen[family]; !ok {
			bad("sample %s has no TYPE line", name)
		}
		for _, pair := range splitLabels(labels) {
			k, _, ok := strings.Cut(pair, "=")
			if !ok || !labelNameRe.MatchString(k) {
				bad("invalid label %q", pair)
			}
		}
		key := name + labels
		if sampleSeen[key] {
			bad("duplicate sample %s", key)
		}
		sampleSeen[key] = true
		val := strings.TrimSpace(rest)
		if val == "" {
			bad("sample without a value")
			continue
		}
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				bad("unparseable value %q", val)
			}
		}
	}
	return problems
}

// splitLabels splits `{a="x",b="y"}` into pairs, honoring escaped quotes.
func splitLabels(s string) []string {
	s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	if s == "" {
		return nil
	}
	var out []string
	start, inQ, esc := 0, false, false
	for i := 0; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case s[i] == '\\':
			esc = true
		case s[i] == '"':
			inQ = !inQ
		case s[i] == ',' && !inQ:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func TestLintCatchesViolations(t *testing.T) {
	broken := "# TYPE ok counter\nok 1\nok 1\n" + // duplicate sample
		"no_type_metric 2\n" + // no TYPE
		"bad-name 3\n" + // invalid name
		"# TYPE v gauge\nv notanumber\n" // bad value
	if got := len(lintExposition(broken)); got != 4 {
		t.Fatalf("lint found %d problems in the known-bad exposition, want 4:\n%v",
			got, lintExposition(broken))
	}
}

// TestMetricsLint scrapes a live store — queries run, scrubber swept, slow
// log populated — through the real /metrics handler and fails on any
// exposition-format violation. CI runs this as its metrics-lint step.
func TestMetricsLint(t *testing.T) {
	st, err := iva.Create(t.TempDir(), iva.Options{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 150; i++ {
		if _, err := st.Insert(iva.Row{
			"brand": iva.Strings("canon"),
			"price": iva.Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		q := iva.NewQuery(3).WhereText("brand", "cannon").WhereNum("price", float64(120+i))
		if _, _, err := st.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	sc := st.StartScrubber(iva.ScrubberOptions{Interval: time.Hour, Throttle: -1})
	defer sc.Stop()
	sc.SweepNow()

	// Mount the query API too: /metrics then serves the store families
	// followed by the iva_server_* families, and the lint must hold on the
	// concatenated page (duplicate family names would be a violation).
	api := server.New(st, nil, server.Config{})
	srv := httptest.NewServer(serveMux(st, sc, api, false))
	defer srv.Close()
	if resp, err := http.Post(srv.URL+"/v1/search", "application/json",
		strings.NewReader(`{"k":2,"terms":[{"attr":"price","num":120}]}`)); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("priming /v1/search failed: %v / %v", err, resp)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lintExposition(string(body)) {
		t.Error(p)
	}
	// The telemetry families this PR adds must actually be in the scrape.
	for _, want := range []string{"iva_scrub_sweeps_total", "iva_health_state", "iva_build_info", "iva_format_version",
		"iva_server_requests_total", "iva_server_shed_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServeTelemetryEndpoints covers the endpoints this PR adds to the serve
// mux: the trace ring with exemplars, the querylog format switch, the
// scrubber-backed healthz, and the pprof gate.
func TestServeTelemetryEndpoints(t *testing.T) {
	st, err := iva.Create(t.TempDir(), iva.Options{TraceSampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 100; i++ {
		if _, err := st.Insert(iva.Row{"price": iva.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	_, qs, err := st.Search(iva.NewQuery(3).WhereNum("price", 40))
	if err != nil {
		t.Fatal(err)
	}
	sc := st.StartScrubber(iva.ScrubberOptions{Interval: time.Hour, Throttle: -1})
	defer sc.Stop()
	sc.SweepNow()

	srv := httptest.NewServer(serveMux(st, sc, nil, false))
	defer srv.Close()
	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/debug/trace")
	if code != 200 || ct != "application/json" {
		t.Fatalf("/debug/trace = %d %q", code, ct)
	}
	var doc struct {
		Total     int64             `json:"total"`
		Traces    []json.RawMessage `json:"traces"`
		Exemplars []json.RawMessage `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace invalid JSON: %v\n%s", err, body)
	}
	if doc.Total < 1 || len(doc.Traces) < 1 || len(doc.Exemplars) < 1 {
		t.Fatalf("/debug/trace retained total=%d traces=%d exemplars=%d", doc.Total, len(doc.Traces), len(doc.Exemplars))
	}

	if code, body, _ := get("/debug/trace?id=" + qs.TraceID); code != 200 || !strings.Contains(body, qs.TraceID) {
		t.Fatalf("/debug/trace?id=%s = %d %q", qs.TraceID, code, body)
	}
	if code, _, _ := get("/debug/trace?id=ffffffffffffffff"); code != 404 {
		t.Fatalf("unknown trace id returned %d, want 404", code)
	}

	if code, _, ct := get("/debug/querylog?format=text"); code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/debug/querylog?format=text = %d %q", code, ct)
	}
	if code, _, _ := get("/debug/querylog?format=xml"); code != 400 {
		t.Fatalf("unknown querylog format returned %d, want 400", code)
	}

	code, body, ct = get("/healthz")
	if code != 200 || ct != "application/json" || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %d %q %q", code, ct, body)
	}

	// pprof stays dark unless the flag was set.
	if code, _, _ := get("/debug/pprof/"); code != 404 {
		t.Fatalf("pprof reachable without -pprof: %d", code)
	}
	srvP := httptest.NewServer(serveMux(st, sc, nil, true))
	defer srvP.Close()
	resp, err := http.Get(srvP.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index with -pprof: %d", resp.StatusCode)
	}
}
