package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"time"

	"github.com/sparsewide/iva"
)

// Scrub exit codes beyond the generic 0 (clean) and 1 (damage found, no
// -repair asked): monitoring distinguishes "the store healed itself" from
// "restore from backup".
const (
	exitScrubRepaired     = 3 // -repair rebuilt the index from a clean table; now clean
	exitScrubUnrepairable = 4 // -repair could not produce a clean store
)

// scrub runs the store-wide checksum sweep and, with -repair, rebuilds the
// index from the table when the damage is index-only (a rebuild rewrites
// both files from the surviving table records, so it requires the table and
// catalog to verify clean). It emits machine-readable `scrub: status=...`
// sweep lines plus one final `scrub: result=...` line, and exits:
//
//	0  clean (result=clean)
//	1  damage found without -repair (result=damaged)
//	3  -repair rebuilt from a clean table and the re-sweep is clean
//	   (result=repaired)
//	4  -repair could not help: the table or catalog is damaged, or damage
//	   survived the rebuild (result=unrepairable)
//
// Damage that prevents Open itself (superblock or tuple-list corruption)
// surfaces as the open error before scrub runs and is not repairable here:
// liveness — which rows were deleted — is recorded only in the index's
// tuple list, so rebuilding from the table alone could resurrect deleted
// rows. Recovery there means restoring the index from a backup or replica.
func scrub(st *iva.Store, dir string, args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	repair := fs.Bool("repair", false, "rebuild the index from the table if only the index is damaged")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := st.Scrub()
	if err != nil {
		return err
	}
	printScrub(rep)
	persistScrub(dir, rep)
	if rep.Clean() {
		fmt.Println("scrub: result=clean")
		return nil
	}
	if !*repair {
		fmt.Println("scrub: result=damaged")
		return fmt.Errorf("%d problems found (re-run with -repair to rebuild the index from a clean table)", len(rep.Problems))
	}
	if rep.CorruptTable > 0 || !rep.CatalogOK {
		fmt.Println("scrub: result=unrepairable")
		return &exitCodeError{code: exitScrubUnrepairable,
			err: fmt.Errorf("cannot repair: the table or catalog is damaged, and the index can only be rebuilt from clean table records")}
	}
	fmt.Println("scrub: repairing — rebuilding table and index files")
	unrepairable := func(err error) error {
		fmt.Println("scrub: result=unrepairable")
		return &exitCodeError{code: exitScrubUnrepairable, err: err}
	}
	if err := st.Rebuild(); err != nil {
		return unrepairable(fmt.Errorf("repair rebuild: %w", err))
	}
	if err := st.Sync(); err != nil {
		return unrepairable(err)
	}
	if rep, err = st.Scrub(); err != nil {
		return unrepairable(err)
	}
	printScrub(rep)
	persistScrub(dir, rep)
	if !rep.Clean() {
		return unrepairable(fmt.Errorf("repair left %d problems", len(rep.Problems)))
	}
	fmt.Println("scrub: result=repaired")
	return &exitCodeError{code: exitScrubRepaired,
		err: fmt.Errorf("scrub repaired the index from a clean table (exit %d distinguishes a heal from a clean sweep)", exitScrubRepaired)}
}

// persistScrub records the sweep outcome in <dir>/scrub-report.json, the
// same snapshot the background scrubber maintains, so a later `ivatool
// stats` (or `stats -strict`) reports scrub age and damage without
// re-sweeping.
func persistScrub(dir string, rep *iva.ScrubReport) {
	health := "ok"
	if !rep.Clean() {
		health = "damaged"
	} else if rep.Legacy {
		health = "degraded"
	}
	now := time.Now()
	snap := iva.ScrubSnapshot{Time: now, Health: health}
	if len(rep.Shards) > 0 {
		for i, r := range rep.Shards {
			snap.Shards = append(snap.Shards, iva.ShardScrubStatus{Shard: i, LastSweep: now, Report: r})
		}
	} else {
		snap.Shards = []iva.ShardScrubStatus{{Shard: 0, LastSweep: now, Report: rep}}
	}
	if err := iva.SaveScrubReport(filepath.Join(dir, "scrub-report.json"), snap); err != nil {
		fmt.Printf("scrub: warning: could not persist report: %v\n", err)
	}
}

func printScrub(rep *iva.ScrubReport) {
	status := "ok"
	if !rep.Clean() {
		status = "fail"
	} else if rep.Legacy {
		status = "legacy" // clean, but pre-v4: nothing was verifiable
	}
	fmt.Printf("scrub: status=%s version=%d segments=%d corrupt=%d dirty=%d ckpts=%d ckpt_corrupt=%d ckpt_dropped=%d zones=%d zone_corrupt=%d zone_dropped=%d table_records=%d table_corrupt=%d superblock_ok=%v catalog_ok=%v problems=%d\n",
		status, rep.FormatVersion, rep.IndexSegments, rep.CorruptIndexSegments,
		rep.DirtyIndexSegments, rep.Checkpoints, rep.CorruptCheckpoints,
		rep.DroppedCheckpoints, rep.Zones, rep.CorruptZones, rep.DroppedZones,
		rep.TableRecords, rep.CorruptTable,
		rep.SuperblockOK, rep.CatalogOK, len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM: %s\n", p)
	}
}
