package main

import (
	"strings"
	"testing"
)

// FuzzQueryParse feeds arbitrary strings through the attr=value parsing the
// query/insert/explain commands share, asserting its invariants: a parse
// either fails or yields a non-empty attribute and value that re-concatenate
// to the input, and a row built from any pair list never holds an attribute
// that no pair mentioned.
func FuzzQueryParse(f *testing.F) {
	f.Add("Type=Digital Camera")
	f.Add("Price=230")
	f.Add("=")
	f.Add("noequals")
	f.Add("a=b=c")
	f.Add("Industry=Computer\x00Industry=Software")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 1<<10 {
			return
		}
		attr, val, err := splitPair(s)
		if err != nil {
			// Rejections must be principled: no '=' separating two
			// non-empty halves exists at the split point chosen.
			if i := strings.IndexByte(s, '='); i > 0 && i < len(s)-1 {
				t.Fatalf("splitPair(%q) rejected a splittable pair", s)
			}
			return
		}
		if attr == "" || val == "" {
			t.Fatalf("splitPair(%q) = (%q, %q): empty half accepted", s, attr, val)
		}
		if attr+"="+val != s {
			t.Fatalf("splitPair(%q) = (%q, %q): does not reassemble", s, attr, val)
		}
		if strings.ContainsRune(attr, '=') {
			t.Fatalf("splitPair(%q): attr %q contains '='", s, attr)
		}

		// The same string repeated must fold into one row attribute, and a
		// second distinct pair must appear alongside it.
		row, err := parseRow([]string{s, s, "zz-fuzz-probe=1"})
		if err != nil {
			t.Fatalf("parseRow on valid pairs: %v", err)
		}
		if _, ok := row[attr]; !ok && attr != "zz-fuzz-probe" {
			t.Fatalf("parseRow dropped attribute %q", attr)
		}
		for name := range row {
			if name != attr && name != "zz-fuzz-probe" {
				t.Fatalf("parseRow invented attribute %q from %q", name, s)
			}
		}
	})
}
