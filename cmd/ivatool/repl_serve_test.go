package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/server"
)

// TestReplOverHTTP is the end-to-end follower path over the real wire: a
// primary served by the HTTP mux, a follower attached with OpenFollower
// against its URL, catch-up across multiple delta cuts, byte-identical
// answers, and the replication verdict on both /healthz bodies.
func TestReplOverHTTP(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := iva.Create(pdir, iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 250; i++ {
		if _, err := primary.Insert(iva.Row{
			"brand": iva.Strings(fmt.Sprintf("brand-%02d", i%17)),
			"price": iva.Num(float64(100 + i%90)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	api := server.New(primary, nil, server.Config{})
	srv := httptest.NewServer(serveMux(primary, nil, api, false))
	defer srv.Close()

	follower, err := iva.OpenFollower(fdir, srv.URL, iva.FollowerOptions{Poll: 5 * time.Millisecond}, iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitGen := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for follower.ReplStatus().Gen < want {
			if time.Now().After(deadline) {
				rs := follower.ReplStatus()
				t.Fatalf("follower stuck at gen %d (want %d), last error %q", rs.Gen, want, rs.LastError)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	compare := func(tag string) {
		t.Helper()
		for i := 0; i < 8; i++ {
			q := iva.NewQuery(7).WhereText("brand", fmt.Sprintf("brand-%02d", i)).WhereNum("price", float64(110+i))
			pres, _, perr := primary.Search(q)
			fres, _, ferr := follower.Search(q)
			if perr != nil || ferr != nil {
				t.Fatalf("%s: search errors: %v / %v", tag, perr, ferr)
			}
			if len(pres) != len(fres) {
				t.Fatalf("%s: %d vs %d results", tag, len(pres), len(fres))
			}
			for j := range pres {
				if pres[j] != fres[j] {
					t.Fatalf("%s: result %d differs: %v vs %v", tag, j, pres[j], fres[j])
				}
			}
		}
	}
	waitGen(primary.ReplStatus().Gen)
	compare("bootstrap over HTTP")

	// More cuts while the wire is live.
	for round := 0; round < 3; round++ {
		for i := 0; i < 40; i++ {
			if _, err := primary.Insert(iva.Row{
				"brand": iva.Strings(fmt.Sprintf("brand-%02d", (round*40+i)%17)),
				"price": iva.Num(float64(300 + round*40 + i)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := primary.Sync(); err != nil {
			t.Fatal(err)
		}
		waitGen(primary.ReplStatus().Gen)
		compare(fmt.Sprintf("round %d", round))
	}

	// The primary's healthz carries the primary verdict line.
	body := httpGet(t, srv.URL+"/healthz")
	if !strings.Contains(body, "replication: role=primary") {
		t.Fatalf("primary healthz missing replication line:\n%s", body)
	}

	// The replication families are in the scrape and the page still lints.
	body = httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{"iva_repl_deltas_cut_total", "iva_repl_generation", "iva_repl_log_deltas"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	for _, p := range lintExposition(body) {
		t.Error(p)
	}

	// A mux over the follower store reports the follower verdict with lag.
	fsrv := httptest.NewServer(serveMux(follower, nil, nil, false))
	defer fsrv.Close()
	body = httpGet(t, fsrv.URL+"/healthz")
	if !strings.Contains(body, "replication: role=follower") || !strings.Contains(body, "primary_gen=") {
		t.Fatalf("follower healthz missing replication line:\n%s", body)
	}

	// Wire error mapping: a stale epoch asks for a resync with 410.
	resp, err := http.Get(srv.URL + "/v1/repl/deltas?epoch=9999&from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale epoch returned %d, want 410", resp.StatusCode)
	}
	// Bad requests are rejected, not served as empty payloads.
	resp, err = http.Get(srv.URL + "/v1/repl/segment?file=iva.idx&off=-1&len=16")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("negative segment offset was served")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}
