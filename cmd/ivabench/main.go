// Command ivabench regenerates the paper's evaluation (Table I and Figures
// 8–17) plus the repository's ablation experiments over the synthetic
// Google-Base workload.
//
// Usage:
//
//	ivabench [-exp name|all] [-tuples N] [-seed S] [-parallelism P] [-markdown] [-list] [-metrics FILE]
//
// Examples:
//
//	ivabench -exp fig8                 # one figure at the default scale
//	ivabench -exp all -tuples 779019   # full paper scale (slow)
//	ivabench -exp all -markdown        # the tables EXPERIMENTS.md embeds
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/sparsewide/iva/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list) or 'all'")
		tuples   = flag.Int("tuples", 60000, "dataset scale in tuples (paper: 779019)")
		seed     = flag.Int64("seed", 42, "dataset seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		list     = flag.Bool("list", false, "list experiments and exit")
		par      = flag.Int("parallelism", 1, "iVA-file search workers: 1 = sequential (the paper's setup), 0 = all cores")
		metrics  = flag.String("metrics", "", "after the run, dump the harness registry in Prometheus text format to FILE ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Experiments {
			fmt.Println(name)
		}
		return
	}
	cfg := bench.Config{Tuples: *tuples, Seed: *seed, Parallelism: *par}
	if *par == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = bench.Experiments
	}
	for _, name := range names {
		start := time.Now()
		r, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(r.Markdown())
		} else {
			fmt.Print(r.Render())
			fmt.Printf("\n(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
	}

	if *metrics != "" {
		text := bench.MetricsText()
		if *metrics == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(*metrics, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
