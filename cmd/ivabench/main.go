// Command ivabench regenerates the paper's evaluation (Table I and Figures
// 8–17) plus the repository's ablation experiments over the synthetic
// Google-Base workload.
//
// Usage:
//
//	ivabench [-exp name|all] [-tuples N] [-seed S] [-parallelism P] [-markdown] [-list] [-metrics FILE]
//	ivabench -serve [-serve.out BENCH_serve.json] [-serve.ms 1000]   # HTTP service load test
//
// Examples:
//
//	ivabench -exp fig8                 # one figure at the default scale
//	ivabench -exp all -tuples 779019   # full paper scale (slow)
//	ivabench -exp all -markdown        # the tables EXPERIMENTS.md embeds
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/sparsewide/iva/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list) or 'all'")
		tuples   = flag.Int("tuples", 60000, "dataset scale in tuples (paper: 779019)")
		seed     = flag.Int64("seed", 42, "dataset seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		list     = flag.Bool("list", false, "list experiments and exit")
		par      = flag.Int("parallelism", 1, "iVA-file search workers: 1 = sequential (the paper's setup), 0 = all cores")
		metrics  = flag.String("metrics", "", "after the run, dump the harness registry in Prometheus text format to FILE ('-' for stdout)")
		pool     = flag.Bool("pool", false, "run the buffer-pool contention benchmark instead of the paper experiments")
		poolOut  = flag.String("pool.out", "BENCH_pool.json", "output file for -pool")
		poolMS   = flag.Int("pool.ms", 300, "measured milliseconds per -pool point")
		zonemap  = flag.Bool("zonemap", false, "run the stripe zone-map selectivity sweep instead of the paper experiments")
		zoneOut  = flag.String("zonemap.out", "BENCH_zonemap.json", "output file for -zonemap")
		codecB   = flag.Bool("codec", false, "run the block-codec sweep (raw vs packed vector lists) instead of the paper experiments")
		codecOut = flag.String("codec.out", "BENCH_codec.json", "output file for -codec")
		serveB   = flag.Bool("serve", false, "run the HTTP query-service traffic benchmark instead of the paper experiments")
		serveOut = flag.String("serve.out", "BENCH_serve.json", "output file for -serve")
		serveMS  = flag.Int("serve.ms", 1000, "measured milliseconds per -serve point")
	)
	flag.Parse()

	if *serveB {
		r, err := bench.RunServeBench(*tuples, *seed, time.Duration(*serveMS)*time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: serve bench: %v\n", err)
			os.Exit(1)
		}
		data, err := r.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: serve bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: writing %s: %v\n", *serveOut, err)
			os.Exit(1)
		}
		for _, p := range r.Points {
			switch p.Mode {
			case "closed":
				fmt.Printf("closed clients=%-3d %8.0f qps  p50 %6.2fms  p99 %6.2fms  (%d requests)\n",
					p.Clients, p.ThroughputQPS, p.P50MS, p.P99MS, p.Requests)
			default:
				fmt.Printf("open   offered=%.0f qps, quota=%.0f qps: shed %.1f%%  admitted p50 %.2fms p99 %.2fms  (%d requests)\n",
					p.OfferedQPS, p.QuotaQPS, 100*p.ShedRate, p.P50MS, p.P99MS, p.Requests)
			}
		}
		fmt.Printf("→ %s\n", *serveOut)
		return
	}

	if *zonemap {
		r, err := bench.RunZoneMapBench(*tuples, *par, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: zonemap bench: %v\n", err)
			os.Exit(1)
		}
		data, err := r.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: zonemap bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*zoneOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: writing %s: %v\n", *zoneOut, err)
			os.Exit(1)
		}
		for _, p := range r.Points {
			match := "match"
			if !p.ResultsMatch {
				match = "MISMATCH"
			}
			fmt.Printf("%-8s k=%-4d stripes=%d pruned=%d/%d (%.1f%%)  scanned %d→%d  filter reads %d→%d (%.1f%% saved)  wall %.1fms→%.1fms (%.2fx)  results %s\n",
				p.Layout, p.K, p.Stripes, p.ZonePruned, p.ZoneChecked, 100*p.PruneRatio,
				p.ScannedOff, p.ScannedOn, p.FilterReadsOff, p.FilterReadsOn, 100*p.ReadsSaved,
				p.WallOffMS, p.WallOnMS, p.Speedup, match)
		}
		fmt.Printf("→ %s\n", *zoneOut)
		return
	}

	if *codecB {
		r, err := bench.RunCodecBench(*tuples, *par, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: codec bench: %v\n", err)
			os.Exit(1)
		}
		data, err := r.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: codec bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*codecOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: writing %s: %v\n", *codecOut, err)
			os.Exit(1)
		}
		for _, p := range r.Points {
			match := "match"
			if !p.ResultsMatch {
				match = "MISMATCH"
			}
			fmt.Printf("%-8s k=%-4d packed %d lists/%d blocks  disk %d→%d (%.1f%% saved)  filter reads %d→%d B (%.1f%% saved)  decode %.0f→%.0f MB/s (%.2fx)  wall %.1fms→%.1fms  results %s\n",
				p.Layout, p.K, p.PackedLists, p.PackedBlocks,
				p.DiskBytesRaw, p.DiskBytesPacked, 100*p.DiskSaved,
				p.FilterReadBytesRaw, p.FilterReadBytesPacked, 100*p.FilterReadSaved,
				p.DecodeRawMBps, p.DecodePackedMBps, p.DecodeSpeedup,
				p.WallRawMS, p.WallPackedMS, match)
		}
		fmt.Printf("→ %s\n", *codecOut)
		return
	}

	if *pool {
		r, err := bench.RunPoolBench(*seed, time.Duration(*poolMS)*time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: pool bench: %v\n", err)
			os.Exit(1)
		}
		data, err := r.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: pool bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*poolOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: writing %s: %v\n", *poolOut, err)
			os.Exit(1)
		}
		for i := range r.Global {
			g, s := r.Global[i], r.Sharded[i]
			fmt.Printf("readers=%d  global: %.0f ops/s (hit %.3f)  sharded[%d]: %.0f ops/s (hit %.3f)  waits %d→%d\n",
				g.Readers, g.OpsPerSec, g.HitRate, s.Shards, s.OpsPerSec, s.HitRate, g.LockWaits, s.LockWaits)
		}
		fmt.Printf("speedup at %d readers: %.2fx (GOMAXPROCS=%d) → %s\n",
			r.Global[len(r.Global)-1].Readers, r.SpeedupAtMax, r.GOMAXPROCS, *poolOut)
		return
	}

	if *list {
		for _, name := range bench.Experiments {
			fmt.Println(name)
		}
		return
	}
	cfg := bench.Config{Tuples: *tuples, Seed: *seed, Parallelism: *par}
	if *par == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = bench.Experiments
	}
	for _, name := range names {
		start := time.Now()
		r, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(r.Markdown())
		} else {
			fmt.Print(r.Render())
			fmt.Printf("\n(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
	}

	if *metrics != "" {
		text := bench.MetricsText()
		if *metrics == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(*metrics, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ivabench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
