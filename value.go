// Package iva is a Go implementation of the iVA-file (inverted vector
// approximation file) of Li, Hui, Li and Gao, "iVA-File: Efficiently
// Indexing Sparse Wide Tables in Community Systems" (ICDE 2009): a
// content-conscious, scan-efficient index for top-k structured similarity
// search over sparse wide tables mixing short text and numeric attributes.
//
// A Store bundles the sparse wide table (row-wise interpreted-schema
// storage), its iVA-file index, and the maintenance policy of §IV-B
// (tail-append inserts, tombstone deletes, threshold-triggered rebuilds).
// Attributes are identified by name and registered on first use, matching
// the free-and-easy data publishing model of community web systems:
//
//	st, _ := iva.Create("", iva.Options{})           // in-memory store
//	tid, _ := st.Insert(iva.Row{
//	    "Type":    iva.Strings("Digital Camera"),
//	    "Company": iva.Strings("Canon"),
//	    "Price":   iva.Num(230),
//	})
//	res, _, _ := st.Search(iva.NewQuery(10).
//	    WhereText("Type", "Digital Camera").
//	    WhereText("Company", "Cannon"). // typo-tolerant (edit distance)
//	    WhereNum("Price", 200))
//
// Results are exact for any monotone similarity metric (Property 3.1): the
// index filters with provable lower bounds (nG-signatures for strings,
// relative-domain codes for numbers), so no false negatives occur.
package iva

import (
	"fmt"
	"strings"

	"github.com/sparsewide/iva/internal/model"
)

// Kind is the type of an attribute.
type Kind int

// Attribute kinds.
const (
	Numeric Kind = iota
	Text
)

func (k Kind) String() string {
	if k == Numeric {
		return "numeric"
	}
	return "text"
}

func (k Kind) internal() model.Kind {
	if k == Numeric {
		return model.KindNumeric
	}
	return model.KindText
}

func kindFrom(k model.Kind) Kind {
	if k == model.KindNumeric {
		return Numeric
	}
	return Text
}

// Value is a defined cell value: one number or a non-empty set of short
// strings (a text cell may hold several strings, e.g. Industry =
// {"Computer", "Software"}).
type Value struct {
	v model.Value
}

// Num returns a numeric value.
func Num(f float64) Value { return Value{model.Num(f)} }

// Strings returns a text value holding the given strings. Each string must
// be non-empty and at most 255 bytes.
func Strings(ss ...string) Value { return Value{model.Text(ss...)} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return kindFrom(v.v.Kind) }

// Float returns the numeric payload (0 for text values).
func (v Value) Float() float64 { return v.v.Num }

// Texts returns the string payload (nil for numeric values).
func (v Value) Texts() []string { return v.v.Strs }

// String implements fmt.Stringer.
func (v Value) String() string { return v.v.String() }

// Row maps attribute names to defined values; attributes absent from the
// map are ndf, the sparse table's undefined marker.
type Row map[string]Value

// TID identifies a stored tuple. Updated tuples receive fresh ids (§IV-B).
type TID = uint32

// Result is one element of a top-k answer, ordered by increasing distance.
type Result struct {
	TID  TID
	Dist float64
}

// Query is a top-k structured similarity query: a handful of expected
// values on named attributes. Build one with NewQuery and the Where
// methods.
type Query struct {
	k     int
	terms []queryTerm
	err   error
}

type queryTerm struct {
	attr   string
	kind   Kind
	num    float64
	str    string
	weight float64
}

// NewQuery starts a query returning the k most similar tuples.
func NewQuery(k int) *Query { return &Query{k: k} }

// WhereText adds an expected string on a text attribute; tuples are ranked
// by the smallest edit distance of their strings to s.
func (q *Query) WhereText(attr, s string) *Query {
	return q.add(queryTerm{attr: attr, kind: Text, str: s})
}

// WhereNum adds an expected number on a numeric attribute; tuples are
// ranked by |value − v|.
func (q *Query) WhereNum(attr string, v float64) *Query {
	return q.add(queryTerm{attr: attr, kind: Numeric, num: v})
}

// WhereTextWeighted is WhereText with an explicit importance weight λ > 0,
// overriding the store's weighting scheme for this term.
func (q *Query) WhereTextWeighted(attr, s string, weight float64) *Query {
	return q.add(queryTerm{attr: attr, kind: Text, str: s, weight: weight})
}

// WhereNumWeighted is WhereNum with an explicit importance weight.
func (q *Query) WhereNumWeighted(attr string, v float64, weight float64) *Query {
	return q.add(queryTerm{attr: attr, kind: Numeric, num: v, weight: weight})
}

func (q *Query) add(t queryTerm) *Query {
	if t.weight < 0 {
		q.err = fmt.Errorf("iva: negative weight on %q", t.attr)
	}
	q.terms = append(q.terms, t)
	return q
}

// describe renders the query for the slow-query log and traces.
func (q *Query) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d", q.k)
	for _, t := range q.terms {
		if t.kind == Numeric {
			fmt.Fprintf(&b, " %s=%g", t.attr, t.num)
		} else {
			fmt.Fprintf(&b, " %s=%q", t.attr, t.str)
		}
	}
	return b.String()
}

// K returns the query's k.
func (q *Query) K() int { return q.k }

// Len returns the number of defined values.
func (q *Query) Len() int { return len(q.terms) }
