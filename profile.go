package iva

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/sparsewide/iva/internal/obs"
)

// WorkerProfile is one filter worker's share of a profiled query: how many
// stripes it claimed from the shared counter, the tuples it scanned, the
// candidates it fetched, and its busy wall time. The sequential plan reports
// a single worker covering everything.
type WorkerProfile struct {
	Stripes int64
	// ZonePruned is how many of the claimed stripes the worker skipped on
	// their zone-map lower bound without opening a cursor.
	ZonePruned int64
	Scanned    int64
	Fetched    int64
	Busy       time.Duration
}

// PhaseProfile decomposes one query's wall time into the paper's phases —
// filter (the synchronized tuple/vector-list scan), refine (random table
// fetches for surviving candidates), and the deterministic (dist, tid) top-k
// merge — plus the striped plan's work distribution and the buffer pool's
// contribution. FilterTime+RefineTime+MergeTime equals the measured query
// wall clock (on a Sharded store, the slowest shard's).
type PhaseProfile struct {
	FilterTime time.Duration
	RefineTime time.Duration
	MergeTime  time.Duration
	// StripesTotal is the number of stripes the plan covered (1 for the
	// sequential plan); StripesSkipped counts stripes never claimed because
	// the plan aborted early. StripesZoneChecked counts claimed stripes
	// whose zone-map record was consulted, and StripesZonePruned the subset
	// skipped outright because their best-possible estimated distance could
	// not beat the top-k bar — zone pruning, distinct from the bar-raced
	// StripesSkipped.
	StripesTotal       int
	StripesSkipped     int
	StripesZoneChecked int
	StripesZonePruned  int
	// Workers holds each filter worker's share. On a Sharded store the
	// slices of all shards are concatenated in shard order.
	Workers []WorkerProfile
	// PoolHitRatio is the fraction of the query's page requests served by
	// the buffer pool.
	PoolHitRatio float64
}

// QueryProfile is the EXPLAIN ANALYZE companion to a search: the executed
// plan's per-phase timing and work distribution, rendered human-readable by
// Render. Profiling changes nothing about execution — the same plan runs with
// or without it, and results are byte-identical to Search.
type QueryProfile struct {
	Query   string // rendered query description
	Results int
	Elapsed time.Duration
	TraceID string
	Stats   QueryStats
}

// SearchProfiled runs Search and additionally returns the executed plan's
// profile. Results are byte-identical to Search — the instrumentation is
// always on; this entry point only materializes it.
func (s *Store) SearchProfiled(q *Query) ([]Result, *QueryProfile, error) {
	start := time.Now()
	res, qs, err := s.search(context.Background(), q, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, newQueryProfile(q, res, qs, time.Since(start)), nil
}

// SearchProfiled runs Search across every shard and returns the fan-out's
// profile; per-shard breakdowns are in Stats.Shards.
func (s *Sharded) SearchProfiled(q *Query) ([]Result, *QueryProfile, error) {
	start := time.Now()
	res, qs, err := s.searchContext(context.Background(), q)
	if err != nil {
		return nil, nil, err
	}
	return res, newQueryProfile(q, res, qs, time.Since(start)), nil
}

func newQueryProfile(q *Query, res []Result, qs QueryStats, elapsed time.Duration) *QueryProfile {
	return &QueryProfile{
		Query:   q.describe(),
		Results: len(res),
		Elapsed: elapsed,
		TraceID: qs.TraceID,
		Stats:   qs,
	}
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// phaseBreakdown denormalizes a query's stats into the slow-query log's
// per-entry phase summary.
func phaseBreakdown(qs QueryStats) *obs.PhaseBreakdown {
	pb := &obs.PhaseBreakdown{
		FilterMS: durMS(qs.FilterTime),
		RefineMS: durMS(qs.RefineTime),
		Scanned:  qs.Scanned,
		Fetched:  qs.TableAccesses,
		Workers:  qs.Workers,
		Degraded: qs.DegradedSegments,
	}
	if qs.Phase != nil {
		pb.MergeMS = durMS(qs.Phase.MergeTime)
	}
	return pb
}

// Render formats the profile in an EXPLAIN ANALYZE style: one header line,
// one line per phase, the I/O summary, and one line per filter worker (and
// per shard on a partitioned store).
func (p *QueryProfile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Search %s\n", p.Query)
	fmt.Fprintf(&b, "  time=%s results=%d workers=%d", fmtMS(p.Elapsed), p.Results, p.Stats.Workers)
	if p.TraceID != "" {
		fmt.Fprintf(&b, " trace=%s", p.TraceID)
	}
	b.WriteByte('\n')
	ph := p.Stats.Phase
	if ph != nil {
		fmt.Fprintf(&b, "  Filter: %s  scanned=%d stripes=%d", fmtMS(ph.FilterTime), p.Stats.Scanned, ph.StripesTotal)
		if ph.StripesSkipped > 0 {
			fmt.Fprintf(&b, " (skipped %d)", ph.StripesSkipped)
		}
		if ph.StripesZoneChecked > 0 {
			fmt.Fprintf(&b, " zone_checked=%d zone_pruned=%d", ph.StripesZoneChecked, ph.StripesZonePruned)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  Refine: %s  fetched=%d\n", fmtMS(ph.RefineTime), p.Stats.TableAccesses)
		fmt.Fprintf(&b, "  Merge:  %s\n", fmtMS(ph.MergeTime))
		fmt.Fprintf(&b, "  I/O: cache_hits=%d phys_reads=%d pool_hit_ratio=%.1f%% disk_cost=%.3fms",
			p.Stats.CacheHits, p.Stats.PhysReads, ph.PoolHitRatio*100, p.Stats.DiskCostMS)
	} else {
		fmt.Fprintf(&b, "  Filter: %s  scanned=%d\n", fmtMS(p.Stats.FilterTime), p.Stats.Scanned)
		fmt.Fprintf(&b, "  Refine: %s  fetched=%d\n", fmtMS(p.Stats.RefineTime), p.Stats.TableAccesses)
		fmt.Fprintf(&b, "  I/O: cache_hits=%d phys_reads=%d disk_cost=%.3fms",
			p.Stats.CacheHits, p.Stats.PhysReads, p.Stats.DiskCostMS)
	}
	if p.Stats.DegradedSegments > 0 {
		fmt.Fprintf(&b, " degraded_segments=%d", p.Stats.DegradedSegments)
	}
	b.WriteByte('\n')
	if ph != nil {
		for i, w := range ph.Workers {
			fmt.Fprintf(&b, "  Worker %d: stripes=%d", i, w.Stripes)
			if w.ZonePruned > 0 {
				fmt.Fprintf(&b, " zone_pruned=%d", w.ZonePruned)
			}
			fmt.Fprintf(&b, " scanned=%d fetched=%d busy=%s\n", w.Scanned, w.Fetched, fmtMS(w.Busy))
		}
	}
	for i, sh := range p.Stats.Shards {
		fmt.Fprintf(&b, "  Shard %d: filter=%s refine=%s", i, fmtMS(sh.FilterTime), fmtMS(sh.RefineTime))
		if shp := sh.Phase; shp != nil {
			fmt.Fprintf(&b, " merge=%s", fmtMS(shp.MergeTime))
		}
		fmt.Fprintf(&b, " scanned=%d fetched=%d workers=%d", sh.Scanned, sh.TableAccesses, sh.Workers)
		if sh.DegradedSegments > 0 {
			fmt.Fprintf(&b, " degraded_segments=%d", sh.DegradedSegments)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteTraces serializes the store's sampled trace ring and the latency
// histogram's bucket exemplars as one JSON object:
// {"total", "traces": [{"time","trace"}...], "exemplars": [...]}. Traces are
// newest first; each exemplar links a latency bucket to the trace id of the
// most recent query that landed in it (joinable against "traces" and the
// slow-query log).
func (s *Store) WriteTraces(w io.Writer) error {
	return writeTraces(w, s.ring, s.om.queryDur)
}

// WriteTraces serializes the partition's shared trace ring and the fan-out
// latency histogram's exemplars (see Store.WriteTraces).
func (s *Sharded) WriteTraces(w io.Writer) error {
	return writeTraces(w, s.ring, s.dur)
}

// FindTrace returns the retained trace with the given 16-hex-digit id, or
// nil; the lookup behind /debug/trace?id=.
func (s *Store) FindTrace(traceID string) *obs.Span { return s.ring.Find(traceID) }

// FindTrace returns the partition's retained trace with the given id, or nil.
func (s *Sharded) FindTrace(traceID string) *obs.Span { return s.ring.Find(traceID) }

func writeTraces(w io.Writer, ring *obs.TraceRing, h *obs.Histogram) error {
	var b bytes.Buffer
	b.WriteString(`{"total":`)
	b.WriteString(strconv.FormatInt(ring.Total(), 10))
	b.WriteString(`,"traces":`)
	var tb bytes.Buffer
	if err := ring.WriteJSON(&tb); err != nil {
		return err
	}
	b.Write(bytes.TrimSpace(tb.Bytes()))
	b.WriteString(`,"exemplars":[`)
	if h != nil {
		bounds := h.Bounds()
		first := true
		for i, e := range h.Exemplars() {
			if e == nil {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			le := "+Inf"
			if i < len(bounds) {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			b.WriteString(`{"le":`)
			b.WriteString(strconv.Quote(le))
			b.WriteString(`,"value":`)
			b.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
			b.WriteString(`,"trace_id":`)
			b.WriteString(strconv.Quote(e.TraceID))
			b.WriteString(`,"time":`)
			b.WriteString(strconv.Quote(e.Time.Format(time.RFC3339Nano)))
			b.WriteByte('}')
		}
	}
	b.WriteString("]}\n")
	_, err := w.Write(b.Bytes())
	return err
}
