package iva

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

func fillStore(t *testing.T, s *Store, n int) *Query {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i%83)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	return NewQuery(5).WhereNum("Price", 140).WhereText("Type", "Camera")
}

// TestQueryTimeout covers Options.QueryTimeout: a store-wide deadline turns
// into context.DeadlineExceeded on a search that cannot finish in time.
func TestQueryTimeout(t *testing.T) {
	s, err := Create("", Options{QueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := fillStore(t, s, 200)
	if _, _, err := s.Search(q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if n := s.pool.PinnedFrames(); n != 0 {
		t.Fatalf("timed-out query leaked %d pins", n)
	}
}

// TestScrubFreshClean asserts a freshly written store scrubs clean on the
// current format version — the ivatool `scrub` happy path.
func TestScrubFreshClean(t *testing.T) {
	s, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s, 120)
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fresh store not clean: %+v", rep.Problems)
	}
	if rep.Legacy || rep.FormatVersion < 4 {
		t.Fatalf("fresh store should be v4+, got version=%d legacy=%v", rep.FormatVersion, rep.Legacy)
	}
	if rep.IndexSegments == 0 || rep.TableRecords == 0 {
		t.Fatalf("scrub covered nothing: %+v", rep)
	}
}

// TestCorruptionEndToEnd is the full public-API corruption story on a disk
// store: flip one committed index bit, then confirm Strict mode refuses with
// a typed CorruptionError, the default DegradeReads mode returns the exact
// baseline answer while reporting the damage (QueryStats, Prometheus
// counter, Scrub), and Rebuild from the clean table restores a clean store.
func TestCorruptionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := fillStore(t, s, 240)
	want, _, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	exts := s.ix.VectorExtents()
	if len(exts) == 0 {
		t.Fatal("store has no committed vector extents")
	}
	off := exts[0].Offset + exts[0].Len/2
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	idxPath := filepath.Join(dir, "iva.idx")
	blob, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[off] ^= 0x08
	if err := os.WriteFile(idxPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict: the query must fail with the typed corruption error.
	s, err = Open(dir, Options{Integrity: Strict})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Search(q)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("strict search: got %v, want *CorruptionError", err)
	}
	if ce.File == "" || ce.Detail == "" {
		t.Fatalf("corruption error lacks context: %+v", ce)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Default DegradeReads: exact answer, damage visible everywhere.
	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, qs, err := s.Search(q)
	if err != nil {
		t.Fatalf("degraded search failed: %v", err)
	}
	if qs.DegradedSegments < 1 {
		t.Fatalf("degraded search reported %d degraded segments", qs.DegradedSegments)
	}
	if len(res) != len(want) {
		t.Fatalf("degraded search returned %d results, want %d", len(res), len(want))
	}
	for i := range res {
		if res[i].TID != want[i].TID {
			t.Fatalf("degraded result %d: got tid %d, want %d", i, res[i].TID, want[i].TID)
		}
	}
	if ok, err := regexp.MatchString(`iva_corrupt_segments_total [1-9]`, s.MetricsText()); err != nil || !ok {
		t.Fatalf("iva_corrupt_segments_total not incremented (err=%v)", err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.CorruptIndexSegments < 1 {
		t.Fatalf("scrub missed the damage: %+v", rep)
	}
	if rep.CorruptTable != 0 || !rep.CatalogOK {
		t.Fatalf("scrub blamed the wrong file: %+v", rep)
	}

	// Repair: the table is intact, so a rebuild restores a clean index.
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if rep, err = s.Scrub(); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("rebuild left problems: %+v", rep.Problems)
	}
	res, qs, err = s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if qs.DegradedSegments != 0 {
		t.Fatalf("post-rebuild search still degraded: %d", qs.DegradedSegments)
	}
	for i := range res {
		if res[i].TID != want[i].TID {
			t.Fatalf("post-rebuild result %d: got tid %d, want %d", i, res[i].TID, want[i].TID)
		}
	}
}

// TestShardedResilience covers the partition-level surface: Scrub sums shard
// reports and SearchContext propagates cancellation across shards.
func TestShardedResilience(t *testing.T) {
	s, err := CreateSharded("", 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 160; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i%71)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("sharded scrub not clean: %+v", rep.Problems)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("summed report kept %d shard reports, want 2", len(rep.Shards))
	}

	q := NewQuery(3).WhereNum("Price", 120)
	if _, _, err := s.SearchContext(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SearchContext(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded cancelled search: got %v, want context.Canceled", err)
	}
}
