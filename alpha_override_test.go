package iva

import "testing"

func TestAlphaPerAttrApplied(t *testing.T) {
	st, err := Create("", Options{
		AlphaPerAttr:   map[string]float64{"title": 0.40},
		CleanThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 40; i++ {
		if _, err := st.Insert(Row{
			"title": Strings("community systems paper"),
			"year":  Num(float64(2000 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Overrides resolve at rebuild time, once the attribute exists.
	if err := st.Rebuild(); err != nil {
		t.Fatal(err)
	}
	res, _, err := st.Search(NewQuery(3).
		WhereText("title", "community systems papre"). // transposition typo
		WhereNum("year", 2010))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Dist == 0 {
		t.Fatalf("results = %v", res)
	}
	// The top hit is year 2010 with title ed 2.
	want := 2.0
	if d := res[0].Dist; d != want {
		t.Fatalf("top dist = %v, want %v", d, want)
	}
}
