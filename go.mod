module github.com/sparsewide/iva

go 1.22
