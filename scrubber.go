package iva

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva/internal/obs"
)

// ScrubberOptions configure the background scrub scheduler.
type ScrubberOptions struct {
	// Interval is the target period for revisiting every shard: the pause
	// between consecutive shard sweeps is Interval/shards (floored at
	// ShardPause). Default 10 minutes.
	Interval time.Duration
	// ShardPause is the minimum idle time between two shard sweeps, so a
	// small partition is not swept back-to-back. Default 1 second.
	ShardPause time.Duration
	// Throttle is the sleep injected into a sweep every ThrottleEvery
	// verified units (index segments, checkpoint records, table records),
	// bounding the sweep's I/O rate. The sweep holds the store's engine
	// read lock throughout — queries proceed (the lock is shared) but
	// rebuilds wait — so the throttle trades sweep I/O pressure against
	// rebuild latency. Default 200µs every 1024 units; a negative Throttle
	// disables throttling.
	Throttle      time.Duration
	ThrottleEvery int
	// ReportPath is where each completed sweep persists the partition's
	// scrub snapshot as JSON (read back by LoadScrubReport and `ivatool
	// stats`). Default <store dir>/scrub-report.json for on-disk stores;
	// empty disables persistence for in-memory stores.
	ReportPath string
}

func (o ScrubberOptions) withDefaults() ScrubberOptions {
	if o.Interval == 0 {
		o.Interval = 10 * time.Minute
	}
	if o.ShardPause == 0 {
		o.ShardPause = time.Second
	}
	if o.Throttle == 0 {
		o.Throttle = 200 * time.Microsecond
	}
	if o.ThrottleEvery <= 0 {
		o.ThrottleEvery = 1024
	}
	return o
}

// HealthState is the scrub scheduler's overall verdict, served by
// ServeHealthz (/healthz).
type HealthState int

const (
	// HealthOK: every sweep so far came back clean and queries report no
	// degradation.
	HealthOK HealthState = iota
	// HealthDegraded: assurance is reduced but nothing is confirmed broken —
	// a legacy (pre-v4) shard without checksum coverage, queries degrading
	// past corrupt segments not yet confirmed by a sweep, or a sweep error.
	HealthDegraded
	// HealthDamaged: the last sweep of some shard found checksum failures.
	HealthDamaged
)

func (h HealthState) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	default:
		return "damaged"
	}
}

// SweepRecord is one completed shard sweep.
type SweepRecord struct {
	Shard  int          `json:"shard"`
	Start  time.Time    `json:"start"`
	End    time.Time    `json:"end"`
	Report *ScrubReport `json:"report,omitempty"`
	Err    string       `json:"error,omitempty"`
}

// Scrubber is the observable background scrub scheduler: a single goroutine
// sweeping one shard at a time (so at most one sweep's I/O load exists at
// once), time-sliced and throttled through the scrub yield hook, prioritizing
// shards whose queries report degraded segments, and folding its findings
// into metrics (iva_scrub_*, iva_health_state) and /healthz.
type Scrubber struct {
	stores []*Store
	opts   ScrubberOptions
	reg    *obs.Registry

	mu          sync.Mutex
	lastSweep   []time.Time // per shard; zero = never swept
	lastCorrupt []int64     // corrupt-segment counter at last sweep end
	lastReport  []*ScrubReport
	lastErr     []string
	history     []SweepRecord // most recent last, capped
	sweeping    int           // shard currently sweeping, -1 idle

	sweepMu sync.Mutex // serializes sweeps between the loop and SweepNow

	units       atomic.Int64
	sweepsCtr   *obs.Counter
	errsCtr     *obs.Counter
	corruptCtr  *obs.Counter
	unitsCtr    *obs.Counter
	throttleCtr *obs.Counter

	stop chan struct{}
	done chan struct{}
}

const scrubReportFileName = "scrub-report.json"
const scrubHistoryCap = 64

// StartScrubber launches a background scrubber over the store. Stop it with
// Stop; a store may have at most one meaningfully running (metrics handles
// are shared, but sweeps of two scrubbers would contend).
func (s *Store) StartScrubber(opts ScrubberOptions) *Scrubber {
	sc := newScrubber([]*Store{s}, s.reg, s.dir, opts)
	go sc.run()
	return sc
}

// StartScrubber launches a background scrubber over every shard of the
// partition: per-shard sweeps are staggered — at most one shard sweeps at any
// moment — and prioritized by query-reported degraded segments.
func (s *Sharded) StartScrubber(opts ScrubberOptions) *Scrubber {
	dir := ""
	if len(s.shards) > 0 && s.shards[0].dir != "" {
		dir = filepath.Dir(s.shards[0].dir)
	}
	sc := newScrubber(s.shards, s.reg, dir, opts)
	go sc.run()
	return sc
}

func newScrubber(stores []*Store, reg *obs.Registry, dir string, opts ScrubberOptions) *Scrubber {
	opts = opts.withDefaults()
	if opts.ReportPath == "" && dir != "" {
		opts.ReportPath = filepath.Join(dir, scrubReportFileName)
	}
	sc := &Scrubber{
		stores:      stores,
		opts:        opts,
		reg:         reg,
		lastSweep:   make([]time.Time, len(stores)),
		lastCorrupt: make([]int64, len(stores)),
		lastReport:  make([]*ScrubReport, len(stores)),
		lastErr:     make([]string, len(stores)),
		sweeping:    -1,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	sc.sweepsCtr = reg.Counter("iva_scrub_sweeps_total", "Completed background shard sweeps.", nil)
	sc.errsCtr = reg.Counter("iva_scrub_errors_total", "Background sweeps that failed with an error.", nil)
	sc.corruptCtr = reg.Counter("iva_scrub_corrupt_found_total", "Corrupt structures (segments, checkpoints, table records) found by background sweeps.", nil)
	sc.unitsCtr = reg.Counter("iva_scrub_units_total", "Units (index segments, checkpoint records, table records) verified by background sweeps.", nil)
	sc.throttleCtr = reg.Counter("iva_scrub_throttle_sleeps_total", "Throttle pauses injected into background sweeps.", nil)
	reg.GaugeFunc("iva_scrub_throttle_seconds", "Configured throttle sleep per pause (0 when disabled).", nil, func() float64 {
		if sc.opts.Throttle < 0 {
			return 0
		}
		return sc.opts.Throttle.Seconds()
	})
	reg.GaugeFunc("iva_scrub_sweeping_shard", "Shard currently being swept (-1 when idle).", nil, func() float64 {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		return float64(sc.sweeping)
	})
	reg.GaugeFunc("iva_scrub_last_sweep_age_seconds", "Age of the stalest shard's last completed sweep (-1 until every shard has been swept once).", nil, func() float64 {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		var oldest time.Time
		for _, t := range sc.lastSweep {
			if t.IsZero() {
				return -1
			}
			if oldest.IsZero() || t.Before(oldest) {
				oldest = t
			}
		}
		return time.Since(oldest).Seconds()
	})
	reg.GaugeFunc("iva_health_state", "Scrub scheduler verdict: 0 ok, 1 degraded, 2 damaged.", nil, func() float64 {
		h, _ := sc.Health()
		return float64(h)
	})
	return sc
}

// pause returns the idle time between consecutive shard sweeps.
func (sc *Scrubber) pause() time.Duration {
	p := sc.opts.Interval / time.Duration(len(sc.stores))
	if p < sc.opts.ShardPause {
		p = sc.opts.ShardPause
	}
	return p
}

func (sc *Scrubber) run() {
	defer close(sc.done)
	t := time.NewTimer(sc.pause())
	defer t.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-t.C:
		}
		sc.SweepNow()
		t.Reset(sc.pause())
	}
}

// Stop halts the scheduler and waits for any in-flight sweep to finish.
func (sc *Scrubber) Stop() {
	select {
	case <-sc.stop:
	default:
		close(sc.stop)
	}
	<-sc.done
}

// pickNext selects the shard to sweep: the one whose queries have degraded
// past the most corrupt segments since its last sweep; with no degradation
// reported anywhere, the least recently swept shard (never-swept first).
func (sc *Scrubber) pickNext() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	best, bestDelta := -1, int64(0)
	for i, st := range sc.stores {
		if d := st.om.corruptSegs.Value() - sc.lastCorrupt[i]; d > bestDelta {
			best, bestDelta = i, d
		}
	}
	if best >= 0 {
		return best
	}
	for i := range sc.stores {
		if best == -1 || sc.lastSweep[i].Before(sc.lastSweep[best]) {
			best = i
		}
	}
	return best
}

// SweepNow synchronously picks and sweeps one shard (the same selection the
// background loop makes) and returns its index. Sweeps are serialized: a call
// overlapping the background loop's sweep waits its turn.
func (sc *Scrubber) SweepNow() int {
	sc.sweepMu.Lock()
	defer sc.sweepMu.Unlock()
	i := sc.pickNext()
	sc.sweep(i)
	return i
}

func (sc *Scrubber) sweep(i int) {
	sc.mu.Lock()
	sc.sweeping = i
	sc.mu.Unlock()
	start := time.Now()
	var n int64
	yield := func() {
		n++
		sc.units.Add(1)
		sc.unitsCtr.Inc()
		if sc.opts.Throttle > 0 && n%int64(sc.opts.ThrottleEvery) == 0 {
			sc.throttleCtr.Inc()
			time.Sleep(sc.opts.Throttle)
		}
	}
	rep, err := sc.stores[i].scrubYield(yield)
	end := time.Now()

	rec := SweepRecord{Shard: i, Start: start, End: end, Report: rep}
	sc.sweepsCtr.Inc()
	if err != nil {
		rec.Err = err.Error()
		sc.errsCtr.Inc()
	} else if bad := int64(rep.CorruptIndexSegments + rep.CorruptCheckpoints + rep.CorruptTable); bad > 0 {
		sc.corruptCtr.Add(bad)
	}

	sc.mu.Lock()
	sc.sweeping = -1
	sc.lastSweep[i] = end
	sc.lastCorrupt[i] = sc.stores[i].om.corruptSegs.Value()
	sc.lastReport[i] = rep
	sc.lastErr[i] = rec.Err
	sc.history = append(sc.history, rec)
	if len(sc.history) > scrubHistoryCap {
		sc.history = sc.history[len(sc.history)-scrubHistoryCap:]
	}
	sc.mu.Unlock()

	if sc.opts.ReportPath != "" {
		_ = SaveScrubReport(sc.opts.ReportPath, sc.Snapshot())
	}
}

// Units reports how many units (index segments, checkpoint records, table
// records) the scrubber has verified over its lifetime — the progress
// counter behind iva_scrub_units_total.
func (sc *Scrubber) Units() int64 { return sc.units.Load() }

// History returns the most recent completed sweeps, oldest first.
func (sc *Scrubber) History() []SweepRecord {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]SweepRecord(nil), sc.history...)
}

// Health computes the scheduler's verdict with a one-line reason. Shards
// never swept yet contribute nothing — the verdict covers what is known.
func (sc *Scrubber) Health() (HealthState, string) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	state, reason := HealthOK, ""
	worsen := func(s HealthState, r string) {
		if s > state {
			state, reason = s, r
		}
	}
	for i, st := range sc.stores {
		if rep := sc.lastReport[i]; rep != nil {
			if !rep.Clean() {
				worsen(HealthDamaged, fmt.Sprintf("shard %d: scrub found damage", i))
				continue
			}
			if rep.Legacy {
				worsen(HealthDegraded, fmt.Sprintf("shard %d: legacy format, no checksum coverage", i))
			}
		}
		if sc.lastErr[i] != "" {
			worsen(HealthDegraded, fmt.Sprintf("shard %d: sweep error: %s", i, sc.lastErr[i]))
		}
		if d := st.om.corruptSegs.Value() - sc.lastCorrupt[i]; d > 0 {
			worsen(HealthDegraded, fmt.Sprintf("shard %d: queries degraded past %d corrupt segment reads since last sweep", i, d))
		}
	}
	return state, reason
}

// ServeHealthz reports the scheduler's verdict over HTTP: 200 with
// {"status":"ok"} or {"status":"degraded",...}, 503 with
// {"status":"damaged",...}. Mount it at /healthz.
func (sc *Scrubber) ServeHealthz(w http.ResponseWriter, _ *http.Request) {
	state, reason := sc.Health()
	w.Header().Set("Content-Type", "application/json")
	if state == HealthDamaged {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	body := map[string]string{"status": state.String()}
	if reason != "" {
		body["reason"] = reason
	}
	_ = json.NewEncoder(w).Encode(body)
}

// ScrubSnapshot is the persisted cross-sweep state (scrub-report.json): the
// verdict plus each shard's last sweep. `ivatool stats` reads it to report
// scrub age and per-shard damage without re-sweeping.
type ScrubSnapshot struct {
	Time   time.Time          `json:"time"`
	Health string             `json:"health"`
	Reason string             `json:"reason,omitempty"`
	Shards []ShardScrubStatus `json:"shards"`
}

// ShardScrubStatus is one shard's entry in a ScrubSnapshot.
type ShardScrubStatus struct {
	Shard     int          `json:"shard"`
	LastSweep time.Time    `json:"last_sweep,omitempty"`
	Err       string       `json:"error,omitempty"`
	Report    *ScrubReport `json:"report,omitempty"`
}

// Snapshot captures the scrubber's current cross-sweep state.
func (sc *Scrubber) Snapshot() ScrubSnapshot {
	state, reason := sc.Health()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	snap := ScrubSnapshot{Time: time.Now(), Health: state.String(), Reason: reason}
	for i := range sc.stores {
		snap.Shards = append(snap.Shards, ShardScrubStatus{
			Shard:     i,
			LastSweep: sc.lastSweep[i],
			Err:       sc.lastErr[i],
			Report:    sc.lastReport[i],
		})
	}
	return snap
}

// SaveScrubReport atomically persists a snapshot as JSON at path.
func SaveScrubReport(path string, snap ScrubSnapshot) error {
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadScrubReport reads a snapshot persisted by SaveScrubReport (or by
// `ivatool scrub`); os.IsNotExist(err) distinguishes "never scrubbed".
func LoadScrubReport(path string) (*ScrubSnapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap ScrubSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return nil, fmt.Errorf("iva: %s: %w", path, err)
	}
	return &snap, nil
}
