package iva

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/sparsewide/iva/internal/repl"
	"github.com/sparsewide/iva/internal/storage"
)

// localSource drives a follower from an in-process primary Store, skipping
// HTTP but not the wire format: every delta round-trips through its encoded
// form exactly as it would over the network.
type localSource struct{ p *Store }

func (l localSource) Snapshot(ctx context.Context) (*repl.Delta, error) {
	blob, err := l.p.ReplSnapshot()
	if err != nil {
		return nil, err
	}
	return repl.DecodeDelta(blob)
}

func (l localSource) Deltas(ctx context.Context, epoch, from uint64) (*repl.Batch, error) {
	blob, err := l.p.ReplDeltas(epoch, from)
	if err != nil {
		return nil, err
	}
	return repl.DecodeBatch(blob)
}

// localPeer is the in-process read-repair peer.
type localPeer struct{ p *Store }

func (l localPeer) FetchFileRange(ctx context.Context, file string, off, n int64) ([]byte, error) {
	return l.p.ReplFileRange(file, off, n)
}

// gatedSource caps the generation served to the follower so tests can hold
// it at an exact synced generation and compare answers there.
type gatedSource struct {
	inner localSource
	mu    sync.Mutex
	max   uint64
}

func (g *gatedSource) allow(gen uint64) {
	g.mu.Lock()
	g.max = gen
	g.mu.Unlock()
}

func (g *gatedSource) Snapshot(ctx context.Context) (*repl.Delta, error) {
	return g.inner.Snapshot(ctx)
}

func (g *gatedSource) Deltas(ctx context.Context, epoch, from uint64) (*repl.Batch, error) {
	b, err := g.inner.Deltas(ctx, epoch, from)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	max := g.max
	g.mu.Unlock()
	kept := b.Deltas[:0]
	for _, d := range b.Deltas {
		if d.Gen <= max {
			kept = append(kept, d)
		}
	}
	b.Deltas = kept
	if b.PrimaryGen > max {
		b.PrimaryGen = max
	}
	return b, nil
}

// waitFollowerGen blocks until the follower's applied generation reaches
// want (under the given epoch, 0 = any).
func waitFollowerGen(t *testing.T, st *Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		rs := st.ReplStatus()
		if rs.Gen >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at gen %d (want %d), last error %q", rs.Gen, want, rs.LastError)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// replWorkload is a deterministic mixed workload: inserts, updates and
// deletes over a handful of numeric and text attributes.
type replWorkload struct {
	rng  *rand.Rand
	tids []TID
}

func (w *replWorkload) row(i int) Row {
	return Row{
		"num":   Num(float64(w.rng.Intn(500))),
		"score": Num(w.rng.Float64() * 100),
		"cat":   Strings(fmt.Sprintf("cat-%02d", w.rng.Intn(24))),
		"tag":   Strings(fmt.Sprintf("tag-%d", w.rng.Intn(8)), fmt.Sprintf("alt-%d", i%5)),
	}
}

func (w *replWorkload) step(t *testing.T, st *Store, i int) {
	t.Helper()
	switch {
	case len(w.tids) > 20 && w.rng.Intn(100) < 12:
		k := w.rng.Intn(len(w.tids))
		if err := st.Delete(w.tids[k]); err != nil {
			t.Fatal(err)
		}
		w.tids = append(w.tids[:k], w.tids[k+1:]...)
	case len(w.tids) > 20 && w.rng.Intn(100) < 12:
		k := w.rng.Intn(len(w.tids))
		tid, err := st.Update(w.tids[k], w.row(i))
		if err != nil {
			t.Fatal(err)
		}
		w.tids[k] = tid // updates re-key the tuple
	default:
		tid, err := st.Insert(w.row(i))
		if err != nil {
			t.Fatal(err)
		}
		w.tids = append(w.tids, tid)
	}
}

// replQueries is the comparison battery: a deterministic set of queries
// touching every attribute shape.
func replQueries(rng *rand.Rand) []*Query {
	qs := []*Query{
		NewQuery(10).WhereNum("num", 250),
		NewQuery(5).WhereText("cat", "cat-07").WhereNum("score", 50),
		NewQuery(20).WhereText("tag", "tag-3"),
		NewQuery(1).WhereNum("num", 0).WhereNum("score", 0),
		NewQuery(15).WhereText("cat", "cat-00").WhereText("tag", "alt-2").WhereNum("num", 100),
	}
	for i := 0; i < 5; i++ {
		qs = append(qs, NewQuery(1+rng.Intn(12)).
			WhereNum("num", float64(rng.Intn(500))).
			WhereText("cat", fmt.Sprintf("cat-%02d", rng.Intn(24))))
	}
	return qs
}

// assertSameAnswers runs the battery on both stores and requires identical
// results — TIDs, order, and exact distances.
func assertSameAnswers(t *testing.T, primary, follower *Store, queries []*Query, tag string) {
	t.Helper()
	for qi, q := range queries {
		pres, _, perr := primary.Search(q)
		fres, fstats, ferr := follower.Search(q)
		if (perr == nil) != (ferr == nil) {
			t.Fatalf("%s: query %d error mismatch: primary %v, follower %v", tag, qi, perr, ferr)
		}
		if perr != nil {
			continue
		}
		if len(pres) != len(fres) {
			t.Fatalf("%s: query %d: primary %d results, follower %d", tag, qi, len(pres), len(fres))
		}
		for i := range pres {
			if pres[i].TID != fres[i].TID || pres[i].Dist != fres[i].Dist {
				t.Fatalf("%s: query %d result %d: primary {%d %v}, follower {%d %v} (follower degraded segs: %d)",
					tag, qi, i, pres[i].TID, pres[i].Dist, fres[i].TID, fres[i].Dist, fstats.DegradedSegments)
			}
		}
	}
}

// TestReplFollowerDifferential is the seeded primary/follower differential:
// a follower held at each synced generation answers every query of the
// battery byte-identically to the primary, across deletes, updates, follower
// reopens, a primary rebuild (which forces a snapshot resync), and search
// parallelism 1 / 2 / GOMAXPROCS.
func TestReplFollowerDifferential(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{SearchParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rng := rand.New(rand.NewSource(0x1fa5eed))
	w := &replWorkload{rng: rng}
	for i := 0; i < 300; i++ {
		w.step(t, primary, i)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}

	src := &gatedSource{inner: localSource{primary}}
	src.allow(primary.ReplStatus().Gen)
	follower, err := openFollower(fdir, src, FollowerOptions{Poll: 5 * time.Millisecond}, Options{SearchParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { follower.Close() }()
	queries := replQueries(rand.New(rand.NewSource(42)))
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	assertSameAnswers(t, primary, follower, queries, "bootstrap")

	// Writes on the follower must refuse.
	if _, err := follower.Insert(Row{"num": Num(1)}); err != ErrFollower {
		t.Fatalf("follower Insert returned %v, want ErrFollower", err)
	}
	if err := follower.Rebuild(); err != ErrFollower {
		t.Fatalf("follower Rebuild returned %v, want ErrFollower", err)
	}

	// Generation-by-generation: mutate, sync, release exactly one delta,
	// compare at that synced generation.
	for round := 0; round < 8; round++ {
		for i := 0; i < 40; i++ {
			w.step(t, primary, 1000+round*40+i)
		}
		if err := primary.Sync(); err != nil {
			t.Fatal(err)
		}
		gen := primary.ReplStatus().Gen
		src.allow(gen)
		waitFollowerGen(t, follower, gen)
		assertSameAnswers(t, primary, follower, queries, fmt.Sprintf("gen %d", gen))
	}

	// Follower reopen (crash-free restart): must resume from its durable
	// cursor, not resync.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	follower, err = openFollower(fdir, src, FollowerOptions{Poll: 5 * time.Millisecond}, Options{SearchParallelism: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	resyncsBefore := follower.fol.resyncs.Value()
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	assertSameAnswers(t, primary, follower, queries, "after follower reopen")
	if got := follower.fol.resyncs.Value(); got != resyncsBefore {
		t.Fatalf("clean reopen took %d snapshot resyncs, want none", got-resyncsBefore)
	}

	// A primary rebuild invalidates the delta log; the follower must land on
	// the rebuilt state via snapshot resync and still answer identically.
	for i := 0; i < 40; i++ {
		w.step(t, primary, 2000+i)
	}
	if err := primary.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	src.allow(primary.ReplStatus().Gen)
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	assertSameAnswers(t, primary, follower, queries, "after primary rebuild")
	if follower.fol.resyncs.Value() == resyncsBefore {
		t.Fatal("primary rebuild did not force a follower resync")
	}
}

// TestReplPrimaryCrashEpochBump: a primary that advances past its recorded
// replication state while replication is down (crash after sync without a
// cut) must come back under a fresh epoch, pushing followers to resync
// rather than silently diverge.
func TestReplPrimaryCrashEpochBump(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := &replWorkload{rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 120; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	src := &gatedSource{inner: localSource{primary}}
	src.allow(primary.ReplStatus().Gen)
	follower, err := openFollower(fdir, src, FollowerOptions{Poll: 5 * time.Millisecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	epoch1 := primary.ReplStatus().Epoch
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" the primary: abandon without Close, reopen, mutate and sync
	// WITHOUT replication enabled — the durable repl state is now stale.
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	primary = nil // abandoned
	p2, err := Open(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	w2 := &replWorkload{rng: rand.New(rand.NewSource(8))}
	for i := 0; i < 60; i++ {
		w2.step(t, p2, i)
	}
	if err := p2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p2.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	rs := p2.ReplStatus()
	if rs.Epoch <= epoch1 {
		t.Fatalf("stale primary resumed epoch %d (was %d); divergence guard failed", rs.Epoch, epoch1)
	}
	// The old follower reattaches: epoch mismatch → resync → identical.
	if err := p2.Sync(); err != nil {
		t.Fatal(err)
	}
	src2 := &gatedSource{inner: localSource{p2}}
	src2.allow(p2.ReplStatus().Gen)
	follower, err = openFollower(fdir, src2, FollowerOptions{Poll: 5 * time.Millisecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	deadline := time.Now().Add(15 * time.Second)
	for follower.ReplStatus().Epoch != rs.Epoch || follower.ReplStatus().Gen < rs.Gen {
		if time.Now().After(deadline) {
			frs := follower.ReplStatus()
			t.Fatalf("follower stuck at epoch %d gen %d (want epoch %d gen %d), err %q",
				frs.Epoch, frs.Gen, rs.Epoch, rs.Gen, frs.LastError)
		}
		time.Sleep(2 * time.Millisecond)
	}
	assertSameAnswers(t, p2, follower, replQueries(rand.New(rand.NewSource(42))), "after epoch bump")
}

// TestReplFollowerCrashMidApply simulates a power cut at every interesting
// boundary of a delta apply — journal written but nothing applied, partially
// applied, fully applied but journal not yet dropped — and requires the
// journal redo to land the follower on exactly the delta's generation with
// answers identical to the primary.
func TestReplFollowerCrashMidApply(t *testing.T) {
	base := t.TempDir()
	pdir := filepath.Join(base, "primary")
	// Growth and clean rebuilds pinned off: each rebuild invalidates the
	// delta log and bumps the generation, and this test needs exactly one
	// delta per Sync.
	primary, err := Create(pdir, Options{GrowthRebuildFactor: 1e9, CleanThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(11))}
	for i := 0; i < 200; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}

	// Bootstrap a reference follower dir and cut exactly one incremental
	// delta past it. A step batch can trigger an internal layout rebuild,
	// which invalidates the delta log (gen jumps, no incremental available) —
	// retry from a fresh bootstrap until a batch stays rebuild-free.
	src := localSource{primary}
	fdir := filepath.Join(base, "follower")
	var gen0, gen1 uint64
	var delta *repl.Delta
	for attempt := 0; delta == nil; attempt++ {
		if attempt == 10 {
			t.Fatal("no rebuild-free delta window in 10 attempts")
		}
		if err := os.RemoveAll(fdir); err != nil {
			t.Fatal(err)
		}
		if err := bootstrapFollower(context.Background(), fdir, src); err != nil {
			t.Fatal(err)
		}
		gen0 = primary.ReplStatus().Gen
		for i := 0; i < 30; i++ {
			w.step(t, primary, 500+attempt*30+i)
		}
		if err := primary.Sync(); err != nil {
			t.Fatal(err)
		}
		gen1 = primary.ReplStatus().Gen
		if gen1 != gen0+1 {
			continue // a rebuild invalidated the log mid-batch
		}
		batch, err := src.Deltas(context.Background(), primary.ReplStatus().Epoch, gen0)
		if err != nil || len(batch.Deltas) != 1 {
			t.Fatalf("deltas: %v (%d deltas)", err, len(batch.Deltas))
		}
		delta = batch.Deltas[0]
	}
	queries := replQueries(rand.New(rand.NewSource(42)))

	// copyDir snapshots the bootstrapped follower dir so each crash scenario
	// starts from the same bytes.
	copyDir := func(dst string) {
		t.Helper()
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(fdir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			blob, err := os.ReadFile(filepath.Join(fdir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	scenarios := []struct {
		name    string
		wreck   func(dir string) // leaves the dir as a crash would
		wantGen uint64           // generation recovery must land on
	}{
		{"journal written, nothing applied", func(dir string) {
			if err := writeFileAtomic(filepath.Join(dir, replJournalFile), delta.Encode()); err != nil {
				t.Fatal(err)
			}
		}, gen1},
		{"journal written, half the ranges applied", func(dir string) {
			if err := writeFileAtomic(filepath.Join(dir, replJournalFile), delta.Encode()); err != nil {
				t.Fatal(err)
			}
			for _, fd := range delta.Files {
				if fd.ID == repl.FileCatalog {
					continue
				}
				f, err := os.OpenFile(filepath.Join(dir, repl.FileName(fd.ID)), os.O_RDWR, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				for j, r := range fd.Ranges {
					if j%2 == 1 || (fd.ID == repl.FileIndex && r.Off < replSuperblockSize) {
						continue // skip odd ranges and the superblock: torn mid-apply
					}
					if _, err := f.WriteAt(r.Data, r.Off); err != nil {
						t.Fatal(err)
					}
				}
				f.Close()
			}
		}, gen1},
		{"fully applied, journal not yet dropped", func(dir string) {
			if err := applyDeltaToDir(dir, delta); err != nil {
				t.Fatal(err)
			}
			if err := writeFileAtomic(filepath.Join(dir, replJournalFile), delta.Encode()); err != nil {
				t.Fatal(err)
			}
			// repl-state.json still says gen0: the crash hit between verify
			// and the cursor write.
		}, gen1},
		{"torn journal (crash during disk corruption)", func(dir string) {
			blob := delta.Encode()
			if err := os.WriteFile(filepath.Join(dir, replJournalFile), blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, gen1}, // unreadable journal → re-bootstrap lands on the primary's current gen
	}
	for i, sc := range scenarios {
		dir := filepath.Join(base, fmt.Sprintf("crash-%d", i))
		copyDir(dir)
		sc.wreck(dir)
		fol, err := openFollower(dir, src, FollowerOptions{Poll: 5 * time.Millisecond}, Options{})
		if err != nil {
			t.Fatalf("%s: reopen: %v", sc.name, err)
		}
		waitFollowerGen(t, fol, sc.wantGen)
		assertSameAnswers(t, primary, fol, queries, sc.name)
		if _, err := os.Stat(filepath.Join(dir, replJournalFile)); !os.IsNotExist(err) {
			t.Fatalf("%s: journal survived recovery", sc.name)
		}
		rep, err := fol.Scrub()
		if err != nil {
			t.Fatalf("%s: scrub: %v", sc.name, err)
		}
		if !rep.Clean() {
			t.Fatalf("%s: recovered follower not clean: %v", sc.name, rep.Problems)
		}
		fol.Close()
	}
}

// corruptingDevice flips a bit of every write beyond the superblock while
// armed — a disk that lies on the write path. The follower's read-back
// verification must catch it before the commit point.
type corruptingDevice struct {
	storage.Device
	mu    sync.Mutex
	armed bool
	hits  int
}

func (d *corruptingDevice) arm(on bool) {
	d.mu.Lock()
	d.armed = on
	d.mu.Unlock()
}

func (d *corruptingDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	armed := d.armed
	if armed {
		d.hits++
	}
	d.mu.Unlock()
	if armed && off >= replSuperblockSize && len(p) > 0 {
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0x10
		return d.Device.WriteAt(q, off)
	}
	return d.Device.WriteAt(p, off)
}

// TestReplFollowerNeverCommitsUnverified: with a lying disk under the
// follower's index file, a delta apply must fail before the commit point —
// durable cursor unchanged, superblock unchanged — and heal by resync once
// the disk behaves.
func TestReplFollowerNeverCommitsUnverified(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(21))}
	for i := 0; i < 150; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}

	var cdev *corruptingDevice
	opts := Options{deviceHook: func(name string, dev storage.Device) storage.Device {
		if name == indexFileName {
			cdev = &corruptingDevice{Device: dev}
			return cdev
		}
		return dev
	}}
	src := &gatedSource{inner: localSource{primary}}
	src.allow(primary.ReplStatus().Gen)
	follower, err := openFollower(fdir, src, FollowerOptions{Poll: 5 * time.Millisecond}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	genBefore := follower.ReplStatus().Gen

	// Arm the lying disk, cut a delta, let the follower try to apply it.
	cdev.arm(true)
	for i := 0; i < 40; i++ {
		w.step(t, primary, 300+i)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	src.allow(primary.ReplStatus().Gen)
	deadline := time.Now().Add(15 * time.Second)
	for follower.fol.failures.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lying disk never tripped an apply failure (hits %d)", cdev.hits)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The commit point was never reached: the durable cursor still names the
	// old generation.
	st, err := loadFollowerState(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != genBefore {
		t.Fatalf("durable cursor advanced to %d under a lying disk (was %d)", st.Gen, genBefore)
	}
	// Disk heals; the follower must converge (by retry or snapshot resync)
	// and answer identically.
	cdev.arm(false)
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	assertSameAnswers(t, primary, follower, replQueries(rand.New(rand.NewSource(42))), "after disk healed")
	rep, err := follower.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("healed follower not clean: %v", rep.Problems)
	}
}

// TestReplWireCorruptionRejected: a bit-flipped batch on the wire is
// rejected at decode and never touches the follower's files; the follower
// converges once the wire heals.
func TestReplWireCorruptionRejected(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(31))}
	for i := 0; i < 100; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	flip := &flippingSource{p: primary}
	follower, err := openFollower(fdir, flip, FollowerOptions{Poll: 5 * time.Millisecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	genBefore := follower.ReplStatus().Gen

	flip.arm(true)
	for i := 0; i < 30; i++ {
		w.step(t, primary, 200+i)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for follower.fol.pollErrs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flipped wire never produced a poll error")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := follower.ReplStatus().Gen; got != genBefore {
		t.Fatalf("follower advanced to gen %d on a corrupt wire (was %d)", got, genBefore)
	}
	flip.arm(false)
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	assertSameAnswers(t, primary, follower, replQueries(rand.New(rand.NewSource(42))), "after wire healed")
}

// flippingSource serves deltas with one bit flipped while armed; decode must
// reject them (repl.ErrCorruptDelta), which the poll loop counts as a poll
// error.
type flippingSource struct {
	p     *Store
	mu    sync.Mutex
	flipy bool
}

func (f *flippingSource) arm(on bool) {
	f.mu.Lock()
	f.flipy = on
	f.mu.Unlock()
}

func (f *flippingSource) Snapshot(ctx context.Context) (*repl.Delta, error) {
	blob, err := f.p.ReplSnapshot()
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	flip := f.flipy
	f.mu.Unlock()
	if flip && len(blob) > 64 {
		blob = append([]byte(nil), blob...)
		blob[len(blob)/3] ^= 0x04
	}
	return repl.DecodeDelta(blob)
}

func (f *flippingSource) Deltas(ctx context.Context, epoch, from uint64) (*repl.Batch, error) {
	blob, err := f.p.ReplDeltas(epoch, from)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	flip := f.flipy
	f.mu.Unlock()
	if flip && len(blob) > 64 {
		blob = append([]byte(nil), blob...)
		blob[len(blob)/3] ^= 0x04
	}
	return repl.DecodeBatch(blob)
}

// TestReadRepairEndToEnd is the acceptance path: a bit flip inside a
// committed vector-list segment of a follower is detected at query time
// (answers stay exact via refine), healed in place from the primary, and a
// subsequent scrub comes back clean with the repaired segment serving
// undegraded.
func TestReadRepairEndToEnd(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(51))}
	for i := 0; i < 400; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	src := &gatedSource{inner: localSource{primary}}
	src.allow(primary.ReplStatus().Gen)
	follower, err := openFollower(fdir, src, FollowerOptions{Poll: 5 * time.Millisecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)
	queries := replQueries(rand.New(rand.NewSource(42)))
	assertSameAnswers(t, primary, follower, queries, "pre-corruption")

	// Find a committed vector extent, close the follower, flip a bit in it
	// on disk, reopen.
	exts := follower.ix.VectorExtents()
	if len(exts) == 0 {
		t.Fatal("no committed vector extents to corrupt")
	}
	ext := exts[len(exts)/2]
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	ixPath := filepath.Join(fdir, indexFileName)
	blob, err := os.ReadFile(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[ext.Offset+ext.Len/2] ^= 0x20
	if err := os.WriteFile(ixPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	follower, err = openFollower(fdir, src, FollowerOptions{Poll: 5 * time.Millisecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	follower.SetRepairPeer(localPeer{primary})

	// The damage is visible to a scrub, which queues the repair; queries keep
	// exact answers throughout (DegradeReads refines around the bad segment).
	rep, err := follower.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptIndexSegments == 0 {
		t.Fatal("bit flip not detected by scrub")
	}
	assertSameAnswers(t, primary, follower, queries, "degraded")

	follower.waitRepairs()
	if got := follower.repairer.repaired.Value(); got == 0 {
		t.Fatalf("read-repair healed nothing (attempts %d, failed %d)",
			follower.repairer.attempts.Value(), follower.repairer.failed.Value())
	}
	rep, err = follower.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-repair scrub not clean: %v", rep.Problems)
	}
	// Degradation is gone from the query path too.
	for _, q := range queries {
		_, stats, err := follower.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if stats.DegradedSegments != 0 {
			t.Fatalf("query still degraded after repair: %d segments", stats.DegradedSegments)
		}
	}
	assertSameAnswers(t, primary, follower, queries, "post-repair")
}

// TestReadRepairRefusesMismatchedPeer: bytes from a peer at a different
// committed generation fail the local checksum and are never written.
func TestReadRepairRefusesMismatchedPeer(t *testing.T) {
	base := t.TempDir()
	pdir := filepath.Join(base, "primary")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(61))}
	for i := 0; i < 200; i++ {
		w.step(t, primary, i)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	exts := primary.ix.VectorExtents()
	if len(exts) == 0 {
		t.Fatal("no extents")
	}
	// A "peer" serving garbage: same length, wrong bytes.
	segs := collectCommittedSegs(primary)
	if len(segs) == 0 {
		t.Fatal("no committed segments")
	}
	seg := segs[len(segs)/2]
	off, n, ok := primary.ix.SegmentSpan(seg)
	if !ok {
		t.Fatalf("segment %d has no committed span", seg)
	}
	junk := make([]byte, n)
	for i := range junk {
		junk[i] = byte(i * 7)
	}
	if err := primary.ix.RepairSegment(seg, junk); err == nil {
		t.Fatal("RepairSegment accepted bytes failing the committed checksum")
	}
	// The committed bytes are untouched: the span still verifies.
	good, err := primary.ReplFileRange(indexFileName, off, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.ix.RepairSegment(seg, good); err != nil {
		t.Fatalf("matching bytes refused: %v", err)
	}
}

// collectCommittedSegs lists segments with a committed checksum span.
func collectCommittedSegs(st *Store) []uint32 {
	var out []uint32
	for seg := uint32(0); seg < 4096; seg++ {
		if _, _, ok := st.ix.SegmentSpan(seg); ok {
			out = append(out, seg)
		}
	}
	return out
}

// chaosSource wraps the in-process source with the two nightly fault modes:
// partitions (every call fails) and wire bit flips (every payload is
// corrupted before decode). The soak flips between modes while the follower
// keeps polling.
type chaosSource struct {
	inner localSource
	mu    sync.Mutex
	mode  int // 0 clean, 1 partitioned, 2 flipping
}

func (c *chaosSource) set(mode int) {
	c.mu.Lock()
	c.mode = mode
	c.mu.Unlock()
}

func (c *chaosSource) now() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

func (c *chaosSource) Snapshot(ctx context.Context) (*repl.Delta, error) {
	if c.now() == 1 {
		return nil, fmt.Errorf("chaos: partitioned")
	}
	blob, err := c.inner.p.ReplSnapshot()
	if err != nil {
		return nil, err
	}
	if c.now() == 2 && len(blob) > 64 {
		blob = append([]byte(nil), blob...)
		blob[len(blob)/2] ^= 0x20
	}
	return repl.DecodeDelta(blob)
}

func (c *chaosSource) Deltas(ctx context.Context, epoch, from uint64) (*repl.Batch, error) {
	if c.now() == 1 {
		return nil, fmt.Errorf("chaos: partitioned")
	}
	blob, err := c.inner.p.ReplDeltas(epoch, from)
	if err != nil {
		return nil, err
	}
	if c.now() == 2 && len(blob) > 64 {
		blob = append([]byte(nil), blob...)
		blob[len(blob)/2] ^= 0x20
	}
	return repl.DecodeBatch(blob)
}

// TestReplSoak is the nightly partition/bit-flip replication soak: a live
// workload on the primary while the wire cycles through clean, partitioned
// and corrupting regimes, with periodic follower restarts. After every healed
// round the follower must converge to the primary's generation and answer the
// battery identically; the soak ends with a clean scrub on both sides. Gated
// by IVA_REPL_SOAK (a duration, e.g. "60s").
func TestReplSoak(t *testing.T) {
	env := os.Getenv("IVA_REPL_SOAK")
	if env == "" {
		t.Skip("set IVA_REPL_SOAK=<duration> to run the replication soak")
	}
	dur, err := time.ParseDuration(env)
	if err != nil {
		dur = 2 * time.Second
	}
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(61))}
	for i := 0; i < 150; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	chaos := &chaosSource{inner: localSource{primary}}
	follower, err := openFollower(fdir, chaos, FollowerOptions{Poll: 2 * time.Millisecond}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { follower.Close() }()
	waitFollowerGen(t, follower, primary.ReplStatus().Gen)

	rng := rand.New(rand.NewSource(62))
	deadline := time.Now().Add(dur)
	round := 0
	for time.Now().Before(deadline) {
		round++
		// Pick this round's regime, mutate and cut under it.
		chaos.set(rng.Intn(3))
		steps := 10 + rng.Intn(30)
		for i := 0; i < steps; i++ {
			w.step(t, primary, round*1000+i)
		}
		if err := primary.Sync(); err != nil {
			t.Fatalf("round %d: sync: %v", round, err)
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
		// Occasionally restart the follower mid-regime.
		if rng.Intn(5) == 0 {
			if err := follower.Close(); err != nil {
				t.Fatalf("round %d: follower close: %v", round, err)
			}
			follower, err = openFollower(fdir, chaos, FollowerOptions{Poll: 2 * time.Millisecond}, Options{})
			if err != nil {
				t.Fatalf("round %d: follower reopen: %v", round, err)
			}
		}
		// Heal and require convergence with identical answers.
		chaos.set(0)
		waitFollowerGen(t, follower, primary.ReplStatus().Gen)
		assertSameAnswers(t, primary, follower, replQueries(rand.New(rand.NewSource(int64(round)))),
			fmt.Sprintf("soak round %d", round))
	}
	for name, st := range map[string]*Store{"primary": primary, "follower": follower} {
		rep, err := st.Scrub()
		if err != nil {
			t.Fatalf("%s scrub after soak: %v", name, err)
		}
		if !rep.Clean() {
			t.Fatalf("%s not clean after soak: %v", name, rep.Problems)
		}
	}
	t.Logf("replication soak: %d rounds in %v, follower at gen %d", round, dur, follower.ReplStatus().Gen)
}

// TestReplicaDirReadOnlyUnderPlainOpen: opening a follower's directory with
// plain Open (no poll loop — e.g. `ivatool insert` against a replica dir)
// must still refuse local mutations and skip Sync's superblock rewrite;
// either would fork the bytes from the generation the durable cursor names.
func TestReplicaDirReadOnlyUnderPlainOpen(t *testing.T) {
	base := t.TempDir()
	pdir, fdir := filepath.Join(base, "primary"), filepath.Join(base, "follower")
	primary, err := Create(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	w := &replWorkload{rng: rand.New(rand.NewSource(71))}
	for i := 0; i < 80; i++ {
		w.step(t, primary, i)
	}
	if err := primary.EnableReplSource(); err != nil {
		t.Fatal(err)
	}
	if err := primary.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := bootstrapFollower(context.Background(), fdir, localSource{primary}); err != nil {
		t.Fatal(err)
	}

	before, err := os.ReadFile(filepath.Join(fdir, indexFileName))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(fdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs := st.ReplStatus(); rs.Role != "follower" {
		t.Fatalf("passively opened replica reports role %q", rs.Role)
	}
	if _, err := st.Insert(Row{"num": Num(1)}); err != ErrFollower {
		t.Fatalf("Insert on passively opened replica returned %v, want ErrFollower", err)
	}
	if err := st.Delete(w.tids[0]); err != ErrFollower {
		t.Fatalf("Delete returned %v, want ErrFollower", err)
	}
	if _, err := st.Update(w.tids[0], Row{"num": Num(2)}); err != ErrFollower {
		t.Fatalf("Update returned %v, want ErrFollower", err)
	}
	if err := st.Rebuild(); err != ErrFollower {
		t.Fatalf("Rebuild returned %v, want ErrFollower", err)
	}
	// Reads still work, and Close (which Syncs) must leave the bytes alone.
	if _, _, err := st.Search(NewQuery(5).WhereNum("num", 100)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(fdir, indexFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("index file length changed %d -> %d under a read-only open", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("index byte %d changed under a read-only open", i)
		}
	}
}
