package iva

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/repl"
	"github.com/sparsewide/iva/internal/storage"
)

// Replication, primary side. A primary ships the store's synced prefix as
// log-shipped deltas: every successful Sync cuts one delta holding the byte
// ranges written since the previous Sync (recorded by the TrackDevice layer
// under every store file), CRC32C-covered per range and per blob. A bounded
// in-memory log retains recent deltas for followers to poll; anything older
// — and any event that breaks in-place continuity, like a rebuild — pushes
// followers to a full snapshot instead.

const (
	replPrimaryStateFile  = "repl-primary.json"
	replFollowerStateFile = "repl-state.json"
	replJournalFile       = "repl-journal.bin"

	// replSuperblockSize is the index file's page-atomic commit point: the
	// follower applies every other range first and this page last.
	replSuperblockSize = 4096

	// Retention bounds of the primary's in-memory delta log.
	replMaxLogDeltas = 64
	replMaxLogBytes  = 64 << 20
	// replMaxBatchBytes bounds one /v1/repl/deltas response (at least one
	// delta is always served, whatever its size).
	replMaxBatchBytes = 32 << 20
	// replSnapChunk is the range granularity full snapshots are chunked at.
	replSnapChunk = 8 << 20
)

// ErrNotReplicating is returned by replication endpoints of a store that is
// neither a delta source nor a follower.
var ErrNotReplicating = errors.New("iva: store is not a replication source")

// replPrimary is the delta-shipping state of a primary store.
type replPrimary struct {
	mu         sync.Mutex
	epoch      uint64 // bumped whenever continuity with past followers breaks
	gen        uint64 // committed generation: one per delta-cutting Sync
	log        []replLogEntry
	logBytes   int64
	lastCatCRC uint32
	hasCat     bool

	cuts      *obs.Counter
	cutBytes  *obs.Counter
	snapshots *obs.Counter
	resets    *obs.Counter
}

type replLogEntry struct {
	gen  uint64
	blob []byte
}

// replPrimaryState is the durable (epoch, gen) of the primary, plus the CRC
// of the index superblock page at the last cut: on restart the counter
// resumes only if the committed superblock still matches — otherwise the
// store advanced (or regressed) while replication was down, and a fresh
// epoch forces followers to resync rather than silently diverge.
type replPrimaryState struct {
	Epoch uint64 `json:"epoch"`
	Gen   uint64 `json:"gen"`
	SBCRC uint32 `json:"sbcrc"`
}

// EnableReplSource turns the store into a replication primary: every Sync
// from now on cuts a delta, and ReplSnapshot/ReplDeltas/ReplFileRange serve
// followers. Requires an on-disk store. Idempotent.
func (s *Store) EnableReplSource() error {
	if s.dir == "" {
		return fmt.Errorf("iva: replication source requires an on-disk store")
	}
	if s.fol != nil {
		return fmt.Errorf("iva: a follower cannot be a delta source")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replP != nil {
		return nil
	}
	p := &replPrimary{epoch: 1}
	if st, err := loadReplPrimaryState(filepath.Join(s.dir, replPrimaryStateFile)); err == nil {
		if crc, cerr := s.replSuperblockCRC(); cerr == nil && crc == st.SBCRC {
			p.epoch, p.gen = st.Epoch, st.Gen
		} else {
			p.epoch = st.Epoch + 1
		}
	}
	labels := s.opts.obsLabels
	p.cuts = s.reg.Counter("iva_repl_deltas_cut_total", "Replication deltas cut at sync boundaries.", labels)
	p.cutBytes = s.reg.Counter("iva_repl_delta_bytes_total", "Payload bytes carried by cut replication deltas.", labels)
	p.snapshots = s.reg.Counter("iva_repl_snapshots_served_total", "Full-state snapshots served to followers.", labels)
	p.resets = s.reg.Counter("iva_repl_log_resets_total", "Delta-log invalidations (rebuilds, cut failures) that force followers to resync.", labels)
	s.reg.GaugeFunc("iva_repl_generation", "Committed replication generation (primary: cut; follower: applied).", labels, func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(p.gen)
	})
	s.reg.GaugeFunc("iva_repl_log_deltas", "Deltas currently retained in the primary's replication log.", labels, func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.log))
	})
	for _, name := range []string{tableFileName, indexFileName} {
		if td := s.tracker(name); td != nil {
			td.Arm()
			td.TakeDirty() // anything recorded before enabling is not ours
		}
	}
	s.replP = p
	return s.replSaveState()
}

func loadReplPrimaryState(path string) (replPrimaryState, error) {
	var st replPrimaryState
	blob, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(blob, &st); err != nil {
		return st, err
	}
	return st, nil
}

// replSuperblockCRC stamps the committed index superblock page. The stamp
// must exclude the page's embedded CRC trailer — CRC32C's linearity makes a
// whole-page hash identical for EVERY validly self-checksummed superblock
// (the trailer difference always cancels the payload difference), which
// would blind the epoch resume guard completely. core.SuperblockStamp does
// the version-aware exclusion.
func (s *Store) replSuperblockCRC() (uint32, error) {
	buf := make([]byte, replSuperblockSize)
	if err := s.ixFile.ReadAt(buf, 0); err != nil {
		return 0, err
	}
	return core.SuperblockStamp(buf), nil
}

// replSaveState persists the primary's (epoch, gen, superblock CRC)
// atomically. Caller holds s.mu.
func (s *Store) replSaveState() error {
	crc, err := s.replSuperblockCRC()
	if err != nil {
		return err
	}
	p := s.replP
	p.mu.Lock()
	st := replPrimaryState{Epoch: p.epoch, Gen: p.gen, SBCRC: crc}
	p.mu.Unlock()
	blob, _ := json.Marshal(st)
	return writeFileAtomic(filepath.Join(s.dir, replPrimaryStateFile), blob)
}

// writeFileAtomic writes path via a temp file + rename so a crash leaves
// either the old or the new content, never a torn mix.
func writeFileAtomic(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// replInvalidateLocked drops the retained delta log and advances the
// generation so every follower — including ones that believed themselves
// caught up — falls back to a snapshot. Called after rebuilds (the files
// were replaced wholesale) and failed cuts (the tracked ranges were
// consumed but not shipped). Caller holds s.mu.
func (s *Store) replInvalidateLocked() {
	p := s.replP
	// Reset the trackers: whatever they hold describes files we are no
	// longer shipping increments of.
	for _, name := range []string{tableFileName, indexFileName} {
		if td := s.tracker(name); td != nil {
			td.Arm()
			td.TakeDirty()
		}
	}
	p.mu.Lock()
	p.log = nil
	p.logBytes = 0
	p.gen++
	p.hasCat = false
	p.mu.Unlock()
	p.resets.Inc()
	if err := s.replSaveState(); err != nil {
		// The durable counter is behind; a restart resumes a stale gen but
		// the superblock CRC guard catches it and bumps the epoch.
		_ = err
	}
}

// replCutLocked builds the delta of the Sync that just completed and appends
// it to the log. Caller holds s.mu; the store files are synced. Failures
// invalidate the log (never ship a partial cut).
func (s *Store) replCutLocked() {
	p := s.replP
	tdT, tdI := s.tracker(tableFileName), s.tracker(indexFileName)
	if tdT == nil || tdI == nil {
		return
	}
	tblR := tdT.TakeDirty()
	ixR := tdI.TakeDirty()
	cat := s.cat.Encode()
	catCRC := storage.Checksum(cat)
	p.mu.Lock()
	catSame := p.hasCat && catCRC == p.lastCatCRC
	epoch, gen := p.epoch, p.gen
	p.mu.Unlock()
	if len(tblR) == 0 && len(ixR) == 0 && catSame {
		return // nothing committed since the last cut
	}
	d := &repl.Delta{Epoch: epoch, Gen: gen + 1}
	tfd, err := s.replFileDelta(repl.FileTable, s.tblFile, tblR)
	if err == nil {
		d.Files = append(d.Files, tfd)
		var ifd repl.FileDelta
		ifd, err = s.replFileDelta(repl.FileIndex, s.ixFile, splitSuperblockRanges(ixR))
		if err == nil {
			d.Files = append(d.Files, ifd)
		}
	}
	if err != nil {
		s.replInvalidateLocked()
		return
	}
	d.Files = append(d.Files, repl.FileDelta{
		ID: repl.FileCatalog, Size: int64(len(cat)),
		Ranges: []repl.Range{{Off: 0, CRC: catCRC, Data: cat}},
	})
	blob := d.Encode()
	p.mu.Lock()
	p.gen++
	p.lastCatCRC = catCRC
	p.hasCat = true
	p.log = append(p.log, replLogEntry{gen: p.gen, blob: blob})
	p.logBytes += int64(len(blob))
	for (len(p.log) > replMaxLogDeltas || p.logBytes > replMaxLogBytes) && len(p.log) > 1 {
		p.logBytes -= int64(len(p.log[0].blob))
		p.log = p.log[1:]
	}
	p.mu.Unlock()
	p.cuts.Inc()
	p.cutBytes.Add(d.Bytes())
	if err := s.replSaveState(); err != nil {
		_ = err // superblock CRC guard covers a stale durable counter
	}
}

// replFileDelta snapshots the bytes of the given ranges from a store file.
func (s *Store) replFileDelta(id uint8, f *storage.File, ranges []storage.Range) (repl.FileDelta, error) {
	fd := repl.FileDelta{ID: id, Size: f.Size()}
	for _, r := range ranges {
		buf := make([]byte, r.Len)
		if err := f.ReadAt(buf, r.Off); err != nil {
			return fd, err
		}
		fd.Ranges = append(fd.Ranges, repl.Range{Off: r.Off, CRC: storage.Checksum(buf), Data: buf})
	}
	return fd, nil
}

// splitSuperblockRanges splits any index range overlapping the superblock
// page out of the body ranges, so the follower can apply the commit point
// strictly last.
func splitSuperblockRanges(ranges []storage.Range) []storage.Range {
	var out []storage.Range
	for _, r := range ranges {
		if r.Off < replSuperblockSize && r.Off+r.Len > replSuperblockSize {
			out = append(out,
				storage.Range{Off: r.Off, Len: replSuperblockSize - r.Off},
				storage.Range{Off: replSuperblockSize, Len: r.Off + r.Len - replSuperblockSize})
			continue
		}
		out = append(out, r)
	}
	return out
}

// ReplSnapshot serves a full-state snapshot: the store is synced (cutting
// any pending delta first) and every file is shipped whole as a Full delta
// at the current generation.
func (s *Store) ReplSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.replP
	if p == nil {
		return nil, ErrNotReplicating
	}
	if err := s.syncLocked(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	epoch, gen := p.epoch, p.gen
	p.mu.Unlock()
	d := &repl.Delta{Epoch: epoch, Gen: gen, Full: true}
	tfd, err := wholeFileDelta(repl.FileTable, s.tblFile)
	if err != nil {
		return nil, err
	}
	ifd, err := wholeFileDelta(repl.FileIndex, s.ixFile)
	if err != nil {
		return nil, err
	}
	cat := s.cat.Encode()
	d.Files = append(d.Files, tfd, ifd, repl.FileDelta{
		ID: repl.FileCatalog, Size: int64(len(cat)),
		Ranges: []repl.Range{{Off: 0, CRC: storage.Checksum(cat), Data: cat}},
	})
	p.snapshots.Inc()
	return d.Encode(), nil
}

func wholeFileDelta(id uint8, f *storage.File) (repl.FileDelta, error) {
	fd := repl.FileDelta{ID: id, Size: f.Size()}
	for off := int64(0); off < fd.Size; off += replSnapChunk {
		n := fd.Size - off
		if n > replSnapChunk {
			n = replSnapChunk
		}
		buf := make([]byte, n)
		if err := f.ReadAt(buf, off); err != nil {
			return fd, err
		}
		fd.Ranges = append(fd.Ranges, repl.Range{Off: off, CRC: storage.Checksum(buf), Data: buf})
	}
	return fd, nil
}

// ReplDeltas serves the deltas following generation `from` under `epoch` as
// an encoded batch. repl.ErrResync (epoch mismatch, or `from` fell off the
// retained log) tells the follower to take a snapshot instead.
func (s *Store) ReplDeltas(epoch, from uint64) ([]byte, error) {
	p := s.replP
	if p == nil {
		return nil, ErrNotReplicating
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch != p.epoch || from > p.gen {
		return nil, repl.ErrResync
	}
	var blobs [][]byte
	if from < p.gen {
		if len(p.log) == 0 || p.log[0].gen > from+1 {
			return nil, repl.ErrResync
		}
		var total int64
		for _, e := range p.log {
			if e.gen <= from {
				continue
			}
			if len(blobs) > 0 && total+int64(len(e.blob)) > replMaxBatchBytes {
				break
			}
			blobs = append(blobs, e.blob)
			total += int64(len(e.blob))
		}
	}
	return repl.EncodeBatchRaw(p.epoch, p.gen, blobs), nil
}

// ReplFileRange serves raw bytes [off, off+n) of a store file — the
// read-repair fetch path. It works on any on-disk store (a follower can heal
// a primary and vice versa); the requesting side verifies the bytes against
// its own committed checksums, so this endpoint adds no trust.
func (s *Store) ReplFileRange(file string, off, n int64) ([]byte, error) {
	if off < 0 || n <= 0 || n > replSnapChunk {
		return nil, fmt.Errorf("iva: repl file range: bad span [%d,+%d)", off, n)
	}
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	var f *storage.File
	switch file {
	case tableFileName:
		f = s.tblFile
	case indexFileName:
		f = s.ixFile
	case catalogFileName:
		blob := s.cat.Encode()
		if off >= int64(len(blob)) || off+n > int64(len(blob)) {
			return nil, fmt.Errorf("iva: repl file range: beyond catalog end")
		}
		return blob[off : off+n], nil
	default:
		return nil, fmt.Errorf("iva: repl file range: unknown file %q", file)
	}
	buf := make([]byte, n)
	if err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReplStatus describes the store's replication role and progress.
type ReplStatus struct {
	// Role is "none", "primary" or "follower".
	Role string `json:"role"`
	// Epoch and Gen are the current replication epoch and the committed
	// (primary) or applied (follower) generation.
	Epoch uint64 `json:"epoch,omitempty"`
	Gen   uint64 `json:"gen,omitempty"`
	// PrimaryGen and LagGenerations are follower-side: the primary's
	// generation at the last successful poll and how far behind the applied
	// prefix is.
	PrimaryGen     uint64 `json:"primary_gen,omitempty"`
	LagGenerations uint64 `json:"lag_generations,omitempty"`
	// LogDeltas is primary-side: deltas currently retained for followers.
	LogDeltas int `json:"log_deltas,omitempty"`
	// LastError is the follower's most recent poll/apply error, "" when the
	// last round trip succeeded.
	LastError string `json:"last_error,omitempty"`
	// LastApplyAge is how long ago the follower last applied a delta or
	// confirmed itself caught up (0 before the first poll completes).
	LastApplyAge time.Duration `json:"last_apply_age,omitempty"`
}

// ReplStatus reports the store's replication role and progress.
func (s *Store) ReplStatus() ReplStatus {
	if p := s.replP; p != nil {
		p.mu.Lock()
		defer p.mu.Unlock()
		return ReplStatus{Role: "primary", Epoch: p.epoch, Gen: p.gen, LogDeltas: len(p.log)}
	}
	if f := s.fol; f != nil {
		return f.status()
	}
	// A replica directory opened without its poll loop (plain Open on a
	// follower's dir) still reports the durable cursor: the bytes are that
	// generation's synced prefix, and writes are refused accordingly.
	if cur := s.replicaCur; cur != nil {
		return ReplStatus{Role: "follower", Epoch: cur.Epoch, Gen: cur.Gen}
	}
	return ReplStatus{Role: "none"}
}
