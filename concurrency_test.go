package iva

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSearchDuringRebuild forces frequent rebuilds (aggressive cleaning
// threshold) while readers are mid-query: the engine swap must drain
// in-flight searches instead of closing files under them.
func TestSearchDuringRebuild(t *testing.T) {
	st, err := Create("", Options{CleanThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 300; i++ {
		if _, err := st.Insert(Row{
			"name": Strings(fmt.Sprintf("item %03d", i)),
			"rank": Num(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := NewQuery(5).
					WhereText("name", fmt.Sprintf("item %03d", rng.Intn(300))).
					WhereNum("rank", float64(rng.Intn(300)))
				if _, _, err := st.Search(q); err != nil {
					errc <- err
					return
				}
			}
		}(int64(r))
	}
	// Every delete at β=1% can trigger a rebuild.
	for i := 0; i < 120; i++ {
		tid, err := st.Insert(Row{"name": Strings("churn")})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Delete(tid); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("search failed during rebuild: %v", err)
	}
	if st.Stats().Rebuilds == 0 {
		t.Fatal("no rebuilds happened; test exercised nothing")
	}
}

// TestConcurrentSearchAndMutate hammers one store from parallel readers and
// writers; run with -race to check the locking discipline.
func TestConcurrentSearchAndMutate(t *testing.T) {
	st, err := Create("", Options{CleanThreshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 200; i++ {
		if _, err := st.Insert(Row{
			"name": Strings(fmt.Sprintf("seed item %03d", i)),
			"rank": Num(float64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	// Writers: inserts, deletes, updates.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 80; i++ {
				switch rng.Intn(3) {
				case 0:
					if _, err := st.Insert(Row{"name": Strings(fmt.Sprintf("w%d item %d", seed, i))}); err != nil {
						errc <- err
						return
					}
				case 1:
					if err := st.Delete(TID(rng.Intn(200))); err != nil && err != ErrNotFound {
						errc <- err
						return
					}
				default:
					if _, err := st.Update(TID(rng.Intn(200)), Row{"name": Strings("rewritten")}); err != nil && err != ErrNotFound {
						errc <- err
						return
					}
				}
			}
		}(int64(w))
	}
	// Readers: searches and gets.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 60; i++ {
				q := NewQuery(5).
					WhereText("name", fmt.Sprintf("seed item %03d", rng.Intn(200))).
					WhereNum("rank", float64(rng.Intn(200)))
				if _, _, err := st.Search(q); err != nil {
					errc <- err
					return
				}
				if _, err := st.Get(TID(rng.Intn(400))); err != nil && err != ErrNotFound {
					errc <- err
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The store must still be coherent: a fresh insert is findable.
	tid, err := st.Insert(Row{"name": Strings("final probe")})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := st.Search(NewQuery(1).WhereText("name", "final probe"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TID != tid || res[0].Dist != 0 {
		t.Fatalf("post-churn probe: %v", res)
	}
}
