package iva

import "testing"

func TestStoreExplain(t *testing.T) {
	st, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 60; i++ {
		brand := "canon"
		if i%3 == 0 {
			brand = "sonys"
		}
		if _, err := st.Insert(Row{
			"brand": Strings(brand),
			"price": Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	q := NewQuery(5).WhereText("brand", "cannon").WhereNum("price", 120)
	ex, err := st.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Results) != 5 {
		t.Fatalf("%d results", len(ex.Results))
	}
	res, stats, err := st.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Dist != ex.Results[i].Dist {
			t.Fatalf("explain results diverge at %d", i)
		}
	}
	if ex.Fetched != stats.TableAccesses {
		t.Fatalf("fetched %d vs search accesses %d", ex.Fetched, stats.TableAccesses)
	}
	if len(ex.Terms) != 2 {
		t.Fatalf("%d terms", len(ex.Terms))
	}
	for _, te := range ex.Terms {
		if te.Defined != 60 || te.NDF != 0 {
			t.Fatalf("term %s: defined %d ndf %d", te.Attr, te.Defined, te.NDF)
		}
		if te.Attr != "brand" && te.Attr != "price" {
			t.Fatalf("term name %q", te.Attr)
		}
	}
	// The builder error path.
	if _, err := st.Explain(NewQuery(1).WhereNumWeighted("price", 1, -1)); err == nil {
		t.Fatal("invalid query accepted")
	}
}
