package iva

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
)

// Sharded is a horizontally partitioned store: rows hash across N
// independent shards, each with its own table and iVA-file, and queries run
// against all shards in parallel with their top-k pools merged. §VI of the
// paper points out that the iVA-file, being a flat non-hierarchical index,
// partitions this way with no coordination structure — this type is that
// observation made concrete (single-process here; each shard could equally
// live on its own node).
//
// Global ids are (shard, local tid) packed as shard*ShardStride + tid.
type Sharded struct {
	shards []*Store
}

// ShardStride separates shard id spaces inside a global TID.
const ShardStride TID = 1 << 26

// CreateSharded makes n shards under dir (subdirectories shard-0 ... n-1),
// or an in-memory partition when dir is empty.
func CreateSharded(dir string, n int, opts Options) (*Sharded, error) {
	if n < 1 || TID(n) > (1<<31)/ShardStride {
		return nil, fmt.Errorf("iva: shard count %d out of range", n)
	}
	s := &Sharded{}
	for i := 0; i < n; i++ {
		sub := ""
		if dir != "" {
			sub = filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		}
		st, err := Create(sub, opts)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, st)
	}
	return s, nil
}

// OpenSharded reopens a partition previously created with CreateSharded.
func OpenSharded(dir string, n int, opts Options) (*Sharded, error) {
	s := &Sharded{}
	for i := 0; i < n; i++ {
		st, err := Open(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), opts)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, st)
	}
	return s, nil
}

// Shards returns the number of partitions.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) split(global TID) (shard int, local TID, err error) {
	shard = int(global / ShardStride)
	if shard >= len(s.shards) {
		return 0, 0, ErrNotFound
	}
	return shard, global % ShardStride, nil
}

func (s *Sharded) join(shard int, local TID) TID {
	return TID(shard)*ShardStride + local
}

// nextShard balances inserts by current live count.
func (s *Sharded) nextShard() int {
	best, bestLive := 0, int64(1<<62)
	for i, st := range s.shards {
		if live := st.Stats().Tuples; live < bestLive {
			best, bestLive = i, live
		}
	}
	return best
}

// Insert stores a row on the least-loaded shard and returns its global id.
func (s *Sharded) Insert(row Row) (TID, error) {
	shard := s.nextShard()
	tid, err := s.shards[shard].Insert(row)
	if err != nil {
		return 0, err
	}
	if tid >= ShardStride {
		return 0, fmt.Errorf("iva: shard %d exceeded its id space", shard)
	}
	return s.join(shard, tid), nil
}

// Get returns a row by global id.
func (s *Sharded) Get(global TID) (Row, error) {
	shard, local, err := s.split(global)
	if err != nil {
		return nil, err
	}
	return s.shards[shard].Get(local)
}

// Delete removes a tuple by global id.
func (s *Sharded) Delete(global TID) error {
	shard, local, err := s.split(global)
	if err != nil {
		return err
	}
	return s.shards[shard].Delete(local)
}

// Update replaces a row, returning the new global id (possibly on another
// shard: updates re-balance like inserts, matching §IV-B's fresh-id rule).
func (s *Sharded) Update(global TID, row Row) (TID, error) {
	if err := s.Delete(global); err != nil {
		return 0, err
	}
	return s.Insert(row)
}

// Search runs the query on every shard in parallel and merges the per-shard
// top-k pools into the global top-k. Each shard's answer is exact, so the
// merge is exact too.
func (s *Sharded) Search(q *Query) ([]Result, QueryStats, error) {
	type shardOut struct {
		res   []Result
		stats QueryStats
		err   error
	}
	outs := make([]shardOut, len(s.shards))
	var wg sync.WaitGroup
	for i, st := range s.shards {
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			// Queries are stateless request descriptions; shards share one.
			outs[i].res, outs[i].stats, outs[i].err = st.Search(q)
		}(i, st)
	}
	wg.Wait()

	var agg QueryStats
	var all []Result
	for i, o := range outs {
		if o.err != nil {
			return nil, agg, fmt.Errorf("iva: shard %d: %w", i, o.err)
		}
		for _, r := range o.res {
			all = append(all, Result{TID: s.join(i, r.TID), Dist: r.Dist})
		}
		agg.Scanned += o.stats.Scanned
		agg.TableAccesses += o.stats.TableAccesses
		// Shards run concurrently: the critical path is the slowest shard.
		if o.stats.FilterTime > agg.FilterTime {
			agg.FilterTime = o.stats.FilterTime
		}
		if o.stats.RefineTime > agg.RefineTime {
			agg.RefineTime = o.stats.RefineTime
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].TID < all[j].TID
	})
	if len(all) > q.K() {
		all = all[:q.K()]
	}
	return all, agg, nil
}

// Stats sums per-shard statistics.
func (s *Sharded) Stats() StoreStats {
	var agg StoreStats
	for _, st := range s.shards {
		ss := st.Stats()
		agg.Tuples += ss.Tuples
		agg.Deleted += ss.Deleted
		agg.TableBytes += ss.TableBytes
		agg.IndexBytes += ss.IndexBytes
		agg.Rebuilds += ss.Rebuilds
		if ss.Attributes > agg.Attributes {
			agg.Attributes = ss.Attributes
		}
	}
	return agg
}

// Sync checkpoints every shard.
func (s *Sharded) Sync() error {
	for i, st := range s.shards {
		if err := st.Sync(); err != nil {
			return fmt.Errorf("iva: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard.
func (s *Sharded) Close() error {
	var first error
	for i, st := range s.shards {
		if err := st.Close(); err != nil && first == nil {
			first = fmt.Errorf("iva: shard %d: %w", i, err)
		}
	}
	return first
}
