package iva

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"github.com/sparsewide/iva/internal/obs"
)

// Sharded is a horizontally partitioned store: rows hash across N
// independent shards, each with its own table and iVA-file, and queries run
// against all shards in parallel with their top-k pools merged. §VI of the
// paper points out that the iVA-file, being a flat non-hierarchical index,
// partitions this way with no coordination structure — this type is that
// observation made concrete (single-process here; each shard could equally
// live on its own node).
//
// Global ids are (shard, local tid) packed as shard*ShardStride + tid.
//
// All shards publish into one metrics registry under a shard="<i>" label,
// and into one slow-query log; the fan-out itself adds cross-shard
// aggregate metrics and traces each slow fan-out with per-shard child spans.
type Sharded struct {
	shards  []*Store
	reg     *obs.Registry
	slowLog *obs.QueryLog
	ring    *obs.TraceRing
	queries *obs.Counter
	slow    *obs.Counter
	dur     *obs.Histogram
}

// initObs builds the partition-level aggregates over the shared registry.
func (s *Sharded) initObs(reg *obs.Registry, log *obs.QueryLog, ring *obs.TraceRing) {
	s.reg, s.slowLog, s.ring = reg, log, ring
	s.queries = reg.Counter("iva_fanout_queries_total", "Cross-shard fan-out queries served.", nil)
	s.slow = reg.Counter("iva_fanout_slow_queries_total", "Fan-out queries at or above the slow-query threshold.", nil)
	s.dur = reg.Histogram("iva_fanout_query_duration_seconds", "End-to-end fan-out search latency.", nil, nil)
	reg.GaugeFunc("iva_shards", "Number of partitions.", nil, func() float64 { return float64(len(s.shards)) })
	registerBuildInfo(reg)
}

// shardOpts prepares shard i's options: its own subdirectory-independent
// settings plus the shared observability plumbing.
func shardOpts(opts Options, reg *obs.Registry, log *obs.QueryLog, ring *obs.TraceRing, i int) Options {
	opts.obsReg = reg
	opts.obsLog = log
	opts.obsRing = ring
	opts.obsLabels = obs.Labels{"shard": strconv.Itoa(i)}
	return opts
}

// ShardStride separates shard id spaces inside a global TID.
const ShardStride TID = 1 << 26

// CreateSharded makes n shards under dir (subdirectories shard-0 ... n-1),
// or an in-memory partition when dir is empty.
func CreateSharded(dir string, n int, opts Options) (*Sharded, error) {
	if n < 1 || TID(n) > (1<<31)/ShardStride {
		return nil, fmt.Errorf("iva: shard count %d out of range", n)
	}
	s := &Sharded{}
	reg := obs.NewRegistry()
	log := obs.NewQueryLog(opts.withDefaults().SlowQueryThreshold, opts.withDefaults().SlowQueryLogSize)
	ring := obs.NewTraceRing(opts.TraceRingSize, opts.TraceSampleEvery)
	for i := 0; i < n; i++ {
		sub := ""
		if dir != "" {
			sub = filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		}
		st, err := Create(sub, shardOpts(opts, reg, log, ring, i))
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, st)
	}
	s.initObs(reg, log, ring)
	return s, nil
}

// OpenSharded reopens a partition previously created with CreateSharded.
func OpenSharded(dir string, n int, opts Options) (*Sharded, error) {
	s := &Sharded{}
	reg := obs.NewRegistry()
	log := obs.NewQueryLog(opts.withDefaults().SlowQueryThreshold, opts.withDefaults().SlowQueryLogSize)
	ring := obs.NewTraceRing(opts.TraceRingSize, opts.TraceSampleEvery)
	for i := 0; i < n; i++ {
		st, err := Open(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), shardOpts(opts, reg, log, ring, i))
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, st)
	}
	s.initObs(reg, log, ring)
	return s, nil
}

// Shards returns the number of partitions.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) split(global TID) (shard int, local TID, err error) {
	shard = int(global / ShardStride)
	if shard >= len(s.shards) {
		return 0, 0, ErrNotFound
	}
	return shard, global % ShardStride, nil
}

func (s *Sharded) join(shard int, local TID) TID {
	return TID(shard)*ShardStride + local
}

// nextShard balances inserts by current live count.
func (s *Sharded) nextShard() int {
	best, bestLive := 0, int64(1<<62)
	for i, st := range s.shards {
		if live := st.Stats().Tuples; live < bestLive {
			best, bestLive = i, live
		}
	}
	return best
}

// Insert stores a row on the least-loaded shard and returns its global id.
func (s *Sharded) Insert(row Row) (TID, error) {
	shard := s.nextShard()
	tid, err := s.shards[shard].Insert(row)
	if err != nil {
		return 0, err
	}
	if tid >= ShardStride {
		return 0, fmt.Errorf("iva: shard %d exceeded its id space", shard)
	}
	return s.join(shard, tid), nil
}

// Get returns a row by global id.
func (s *Sharded) Get(global TID) (Row, error) {
	shard, local, err := s.split(global)
	if err != nil {
		return nil, err
	}
	return s.shards[shard].Get(local)
}

// Delete removes a tuple by global id.
func (s *Sharded) Delete(global TID) error {
	shard, local, err := s.split(global)
	if err != nil {
		return err
	}
	return s.shards[shard].Delete(local)
}

// Update replaces a row, returning the new global id (possibly on another
// shard: updates re-balance like inserts, matching §IV-B's fresh-id rule).
func (s *Sharded) Update(global TID, row Row) (TID, error) {
	if err := s.Delete(global); err != nil {
		return 0, err
	}
	return s.Insert(row)
}

// Search runs the query on every shard in parallel and merges the per-shard
// top-k pools into the global top-k. Each shard's answer is exact, so the
// merge is exact too.
//
// The returned QueryStats aggregate the whole fan-out: work and I/O
// counters are summed, wall times are the slowest shard's (shards run
// concurrently, so the critical path is the maximum), and the per-shard
// breakdown is kept in QueryStats.Shards. A fan-out at or above the
// slow-query threshold is logged once, with one child span per shard.
func (s *Sharded) Search(q *Query) ([]Result, QueryStats, error) {
	return s.searchContext(context.Background(), q)
}

func (s *Sharded) searchContext(ctx context.Context, q *Query) ([]Result, QueryStats, error) {
	type shardOut struct {
		res   []Result
		stats QueryStats
		err   error
	}
	root := obs.StartSpan("fanout")
	root.SetInt("shards", int64(len(s.shards)))
	outs := make([]shardOut, len(s.shards))
	var wg sync.WaitGroup
	for i, st := range s.shards {
		wg.Add(1)
		go func(i int, st *Store) {
			defer wg.Done()
			// Queries are stateless request descriptions; shards share one.
			outs[i].res, outs[i].stats, outs[i].err = st.search(ctx, q, root)
		}(i, st)
	}
	wg.Wait()
	root.End()

	var agg QueryStats
	agg.Shards = make([]QueryStats, len(outs))
	agg.TraceID = root.TraceID()
	agg.Phase = &PhaseProfile{}
	var all []Result
	for i, o := range outs {
		if o.err != nil {
			return nil, QueryStats{}, fmt.Errorf("iva: shard %d: %w", i, o.err)
		}
		for _, r := range o.res {
			all = append(all, Result{TID: s.join(i, r.TID), Dist: r.Dist})
		}
		agg.Shards[i] = o.stats
		agg.Scanned += o.stats.Scanned
		agg.TableAccesses += o.stats.TableAccesses
		agg.CacheHits += o.stats.CacheHits
		agg.PhysReads += o.stats.PhysReads
		agg.DiskCostMS += o.stats.DiskCostMS
		agg.DegradedSegments += o.stats.DegradedSegments
		// Shards run concurrently: the critical path is the slowest shard.
		if o.stats.FilterTime > agg.FilterTime {
			agg.FilterTime = o.stats.FilterTime
		}
		if o.stats.RefineTime > agg.RefineTime {
			agg.RefineTime = o.stats.RefineTime
		}
		if o.stats.Workers > agg.Workers {
			agg.Workers = o.stats.Workers
		}
		if p := o.stats.Phase; p != nil {
			agg.Phase.StripesTotal += p.StripesTotal
			agg.Phase.StripesSkipped += p.StripesSkipped
			agg.Phase.StripesZoneChecked += p.StripesZoneChecked
			agg.Phase.StripesZonePruned += p.StripesZonePruned
			agg.Phase.Workers = append(agg.Phase.Workers, p.Workers...)
			if p.FilterTime > agg.Phase.FilterTime {
				agg.Phase.FilterTime = p.FilterTime
			}
			if p.RefineTime > agg.Phase.RefineTime {
				agg.Phase.RefineTime = p.RefineTime
			}
			if p.MergeTime > agg.Phase.MergeTime {
				agg.Phase.MergeTime = p.MergeTime
			}
		}
	}
	if total := agg.CacheHits + agg.PhysReads; total > 0 {
		agg.Phase.PoolHitRatio = float64(agg.CacheHits) / float64(total)
	}
	s.queries.Inc()
	s.dur.ObserveTrace(root.Duration().Seconds(), agg.TraceID)
	if s.slowLog.ObserveEntry(obs.LogEntry{
		Query:    q.describe(),
		Duration: root.Duration(),
		Trace:    root,
		Phases:   phaseBreakdown(agg),
	}) {
		s.slow.Inc()
		s.ring.Force(root)
	} else {
		s.ring.Offer(root)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].TID < all[j].TID
	})
	if len(all) > q.K() {
		all = all[:q.K()]
	}
	return all, agg, nil
}

// WriteMetrics serializes the partition's shared registry — every shard's
// series under its shard label plus the fan-out aggregates — in the
// Prometheus text exposition format.
func (s *Sharded) WriteMetrics(w io.Writer) error { return s.reg.WritePrometheus(w) }

// MetricsText returns WriteMetrics output as a string.
func (s *Sharded) MetricsText() string { return s.reg.Text() }

// WriteSlowQueries serializes the partition's slow-query log as JSON; a
// slow fan-out entry's trace holds one child span per shard.
func (s *Sharded) WriteSlowQueries(w io.Writer) error { return s.slowLog.WriteJSON(w) }

// WriteSlowQueriesText renders the partition's slow-query log one line per
// entry, newest first (see Store.WriteSlowQueriesText).
func (s *Sharded) WriteSlowQueriesText(w io.Writer) error { return s.slowLog.WriteText(w) }

// SlowQueryCount reports how many fan-out queries met the slow threshold.
func (s *Sharded) SlowQueryCount() int64 { return s.slowLog.Total() }

// Stats sums per-shard statistics.
func (s *Sharded) Stats() StoreStats {
	var agg StoreStats
	for i, st := range s.shards {
		ss := st.Stats()
		agg.Tuples += ss.Tuples
		agg.Deleted += ss.Deleted
		agg.TableBytes += ss.TableBytes
		agg.IndexBytes += ss.IndexBytes
		agg.Rebuilds += ss.Rebuilds
		agg.IO = agg.IO.Add(ss.IO)
		if ss.Attributes > agg.Attributes {
			agg.Attributes = ss.Attributes
		}
		agg.ZoneKnown += ss.ZoneKnown
		agg.ZoneSealed += ss.ZoneSealed
		agg.ZoneDropped += ss.ZoneDropped
		agg.ZoneChecked += ss.ZoneChecked
		agg.ZonePruned += ss.ZonePruned
		// Pruning is per-shard; report "on" only when every shard has it.
		if i == 0 {
			agg.ZoneMapsOn = ss.ZoneMapsOn
		} else {
			agg.ZoneMapsOn = agg.ZoneMapsOn && ss.ZoneMapsOn
		}
	}
	return agg
}

// SetZoneMaps toggles stripe zone-map pruning on every shard (see
// Store.SetZoneMaps). Results are identical either way.
func (s *Sharded) SetZoneMaps(enabled bool) {
	for _, st := range s.shards {
		st.SetZoneMaps(enabled)
	}
}

// Sync checkpoints every shard.
func (s *Sharded) Sync() error {
	for i, st := range s.shards {
		if err := st.Sync(); err != nil {
			return fmt.Errorf("iva: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard.
func (s *Sharded) Close() error {
	var first error
	for i, st := range s.shards {
		if err := st.Close(); err != nil && first == nil {
			first = fmt.Errorf("iva: shard %d: %w", i, err)
		}
	}
	return first
}
