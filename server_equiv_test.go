// The degraded-read leg of the server equivalence battery. It lives in the
// root package's external test (package iva_test) because it needs both
// fault-injection access to the index file (via VectorExtentsForTest) and
// internal/server — which imports iva, so an internal test file cannot
// import it.
package iva_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/sparsewide/iva"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/server"
	"github.com/sparsewide/iva/internal/workload"
)

// TestServerEquivalenceDegraded proves the HTTP path preserves the
// degraded-read guarantee: with a corrupt vector-list segment on disk and
// DegradeReads in force, every HTTP answer stays byte-identical to the
// in-process answer, and at least one query reports its degraded segments
// through the wire stats.
func TestServerEquivalenceDegraded(t *testing.T) {
	const (
		seed  = 4242
		nrows = 400
		nq    = 40
	)
	dir := t.TempDir()
	s, err := iva.Create(dir, iva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(seed)
	for i := 0; i < nrows; i++ {
		row := make(iva.Row)
		for _, c := range g.Row() {
			if c.Val.Kind == model.KindNumeric {
				row[c.Name] = iva.Num(c.Val.Num)
			} else {
				row[c.Name] = iva.Strings(c.Val.Strs...)
			}
		}
		if _, err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	exts := s.VectorExtentsForTest()
	if len(exts) == 0 {
		t.Fatal("store has no committed vector extents")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one committed bit in the middle of each of the first few extents
	// so several attributes degrade, then reopen under DegradeReads.
	idxPath := filepath.Join(dir, "iva.idx")
	blob, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(exts) && i < 3; i++ {
		blob[exts[i].Offset+exts[i].Len/2] ^= 0x10
	}
	if err := os.WriteFile(idxPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = iva.Open(dir, iva.Options{Integrity: iva.DegradeReads})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	srv := server.New(s, nil, server.Config{})
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	degraded := 0
	qg := workload.New(seed + 1)
	for i := 0; i < nq; i++ {
		spec := qg.Query()
		req := &server.SearchRequest{K: spec.K}
		seen := map[string]bool{}
		for _, term := range spec.Terms {
			if seen[term.Name] {
				continue
			}
			seen[term.Name] = true
			st := server.SearchTerm{Attr: term.Name, Weight: term.Weight}
			if term.Kind == model.KindNumeric {
				n := term.Num
				st.Num = &n
			} else {
				str := term.Str
				st.Text = &str
			}
			req.Terms = append(req.Terms, st)
		}

		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: HTTP %d: %s", i, resp.StatusCode, raw)
		}
		var got server.SearchResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		want, qs, err := s.SearchContext(context.Background(), req.Query())
		if err != nil {
			t.Fatalf("query %d: in-process search: %v", i, err)
		}
		httpBytes, err := json.Marshal(got.Results)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := json.Marshal(server.Results(want))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(httpBytes, wantBytes) {
			t.Fatalf("query %d: degraded answers diverge\n  http:    %s\n  in-proc: %s", i, httpBytes, wantBytes)
		}
		if got.Stats.DegradedSegments > 0 {
			degraded++
			if qs.DegradedSegments == 0 {
				t.Fatalf("query %d: HTTP reports %d degraded segments, in-process 0", i, got.Stats.DegradedSegments)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no query touched the corrupt extents — the degraded path was not exercised")
	}
}
