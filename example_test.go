package iva_test

import (
	"fmt"
	"log"
	"os"

	"github.com/sparsewide/iva"
)

// The paper's running example: a community catalog with freely defined
// attributes and a typo-tolerant structured similarity query.
func Example() {
	st, err := iva.Create("", iva.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	st.Insert(iva.Row{
		"Type":    iva.Strings("Digital Camera"),
		"Company": iva.Strings("Canon"),
		"Price":   iva.Num(230),
	})
	st.Insert(iva.Row{
		"Type":    iva.Strings("Digital Camera"),
		"Company": iva.Strings("Sony"),
		"Price":   iva.Num(240),
	})

	res, _, err := st.Search(iva.NewQuery(2).
		WhereText("Company", "Cannon"). // the Fig. 2 typo
		WhereNum("Price", 230))
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res {
		row, _ := st.Get(r.TID)
		fmt.Printf("%d. %s (dist %.2f)\n", i+1, row["Company"], r.Dist)
	}
	// Output:
	// 1. {Canon} (dist 1.00)
	// 2. {Sony} (dist 11.18)
}

// Multi-string text values: one cell can hold several strings, and the
// per-attribute difference is the smallest edit distance among them.
func ExampleStrings() {
	st, _ := iva.Create("", iva.Options{})
	defer st.Close()

	st.Insert(iva.Row{"Industry": iva.Strings("Computer", "Software")})
	res, _, _ := st.Search(iva.NewQuery(1).WhereText("Industry", "Software"))
	fmt.Printf("dist %.0f\n", res[0].Dist)
	// Output:
	// dist 0
}

// Explicit term weights override the store's weighting scheme per query.
func ExampleQuery_WhereTextWeighted() {
	st, _ := iva.Create("", iva.Options{})
	defer st.Close()

	a, _ := st.Insert(iva.Row{"title": iva.Strings("gopher"), "tag": iva.Strings("zebra")})
	st.Insert(iva.Row{"title": iva.Strings("zebra"), "tag": iva.Strings("gopher")})

	res, _, _ := st.Search(iva.NewQuery(1).
		WhereTextWeighted("title", "gopher", 10). // title matters most
		WhereTextWeighted("tag", "gopher", 0.1))
	fmt.Println(res[0].TID == a)
	// Output:
	// true
}

// A persistent store survives process restarts.
func ExampleOpen() {
	dir := mustTempDir()
	st, _ := iva.Create(dir, iva.Options{})
	st.Insert(iva.Row{"city": iva.Strings("harbin")})
	st.Close()

	st2, err := iva.Open(dir, iva.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	res, _, _ := st2.Search(iva.NewQuery(1).WhereText("city", "harbin"))
	fmt.Printf("found at dist %.0f\n", res[0].Dist)
	// Output:
	// found at dist 0
}

func mustTempDir() string {
	dir, err := os.MkdirTemp("", "iva-example")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
