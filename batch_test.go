package iva

import (
	"fmt"
	"testing"
)

func TestStoreInsertBatch(t *testing.T) {
	st, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rows := make([]Row, 200)
	for i := range rows {
		rows[i] = Row{
			"name": Strings(fmt.Sprintf("bulk item %03d", i)),
			"lot":  Num(float64(i)),
		}
	}
	tids, err := st.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 200 {
		t.Fatalf("%d tids", len(tids))
	}
	for i := 1; i < len(tids); i++ {
		if tids[i] != tids[i-1]+1 {
			t.Fatalf("non-consecutive tids at %d", i)
		}
	}
	if st.Stats().Tuples != 200 {
		t.Fatalf("live = %d", st.Stats().Tuples)
	}
	res, _, err := st.Search(NewQuery(1).WhereText("name", "bulk item 123").WhereNum("lot", 123))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TID != tids[123] || res[0].Dist != 0 {
		t.Fatalf("batch row not findable: %v", res)
	}
	// Index stays consistent.
	rep, err := st.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("check failed: %v", rep.Problems)
	}

	// A bad row aborts the whole batch.
	if _, err := st.InsertBatch([]Row{{"x": Num(1)}, {}}); err == nil {
		t.Fatal("batch with empty row accepted")
	}
	if st.Stats().Tuples != 200 {
		t.Fatal("failed batch inserted rows")
	}
}
