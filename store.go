package iva

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparsewide/iva/internal/core"
	"github.com/sparsewide/iva/internal/metric"
	"github.com/sparsewide/iva/internal/model"
	"github.com/sparsewide/iva/internal/obs"
	"github.com/sparsewide/iva/internal/storage"
	"github.com/sparsewide/iva/internal/table"
)

// ErrNotFound is returned for operations on tuple ids that are not live.
var ErrNotFound = errors.New("iva: tuple not found")

// ErrFollower is returned for local mutations on a store running in follower
// mode: its files mirror a primary's synced prefix, and a local write would
// fork the replica. Write to the primary instead.
var ErrFollower = errors.New("iva: store is a replication follower (read-only)")

// Options configure a Store.
type Options struct {
	// Alpha is the relative vector length α controlling the filter/refine
	// I/O trade-off (paper default 20%).
	Alpha float64
	// N is the n-gram length of the string signatures (paper default 2,
	// the best choice for short text per Fig. 16).
	N int
	// CacheBytes is the shared file-cache size over the table and index
	// files (paper setup: 10 MiB).
	CacheBytes int64
	// PageSize is the cache page size (default 4 KiB).
	PageSize int
	// CacheShards is the buffer pool's lock-stripe count, rounded up to a
	// power of two. 0 (the default) auto-sizes to GOMAXPROCS×4; 1 gives a
	// single global lock (useful as a contention baseline). Small caches
	// collapse to fewer shards so every stripe keeps a useful quota.
	CacheShards int
	// Metric names the combining function: "L1", "L2" (default) or "Linf".
	Metric string
	// Weights names the attribute weighting scheme: "EQU" (default) or
	// "ITF" (inverse tuple frequency).
	Weights string
	// NDFPenalty is the constant difference charged when a queried
	// attribute is undefined in a tuple (paper example: 20).
	NDFPenalty float64
	// CleanThreshold is β: when deleted/total reaches it, the table and
	// index files are rebuilt to shed tombstones (§IV-B). Default 0.02.
	// Negative disables automatic rebuilds.
	CleanThreshold float64
	// AlphaPerAttr overrides the relative vector length for individual
	// attributes by name (the paper's attribute list carries α per
	// attribute). Overrides take effect when the named attribute exists at
	// (re)build time; Rebuild applies them to attributes registered since.
	AlphaPerAttr map[string]float64
	// GrowthRebuildFactor triggers a rebuild when the live tuple count
	// exceeds this multiple of the count at the last build — §III-C's
	// "periodically renewing all approximation codes of an attribute with
	// the new relative domain": numeric quantizer domains, list-type
	// choices and packed widths are all re-derived as the data grows.
	// Default 2 (amortized-constant doubling); negative disables.
	GrowthRebuildFactor float64
	// SlowQueryThreshold enables the slow-query log: queries whose wall
	// time meets the threshold are captured with their full per-term trace
	// (see WriteSlowQueries). Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize caps the retained slow-query entries (default 64).
	SlowQueryLogSize int
	// SearchParallelism caps the worker count of the striped parallel
	// filter plan. 0 (the default) selects runtime.GOMAXPROCS; 1 forces
	// the sequential plan. Results are identical either way — the parallel
	// plan is byte-for-byte deterministic.
	SearchParallelism int
	// Integrity selects how a checksum mismatch found at read time is
	// handled. DegradeReads (the default) keeps queries answerable: a
	// corrupt vector-list segment contributes zero lower bounds, so the
	// affected tuples all go to refine and results stay exact (refine
	// recomputes true distances from the table file); the damage is counted
	// in QueryStats.DegradedSegments and iva_corrupt_segments_total. Strict
	// fails any operation touching corrupt bytes with a *CorruptionError.
	// Corruption of the tuple list, attribute metadata or table records
	// fails the operation in both modes — there is nothing sound to degrade
	// to.
	Integrity IntegrityMode
	// QueryTimeout bounds every search's wall time. A query past the
	// deadline stops at the next stripe boundary or refine fetch and
	// returns context.DeadlineExceeded. Zero disables the bound;
	// SearchContext composes with it (the earlier deadline wins).
	QueryTimeout time.Duration
	// DisableZoneMaps turns off stripe zone-map pruning (format v5): the
	// per-stripe summaries are still maintained and persisted, but searches
	// no longer skip stripes whose best-possible distance cannot beat the
	// top-k bar. Results are identical either way — the switch exists for
	// A/B measurement and as an escape hatch. See also Store.SetZoneMaps.
	DisableZoneMaps bool
	// Codec selects the block codec vector lists are stored under (format
	// v6): 0 keeps the legacy raw bit-packed layout (byte-compatible with
	// v5), 1 seals Type I/II lists into word-aligned packed blocks with
	// per-block skip headers and delta-coded tuple-id gaps. Answers are
	// byte-identical under either codec; the choice trades build-time
	// transcoding for smaller filter reads. Takes effect at the next build
	// or rebuild; positional (Type III/IV) lists always stay raw.
	Codec int
	// TraceRingSize caps the sampled in-process trace ring served by
	// WriteTraces (/debug/trace): one query trace in every
	// TraceSampleEvery is retained, plus every slow query. 0 defaults to
	// 64 entries sampling 1 in 16; a negative size disables the ring.
	TraceRingSize    int
	TraceSampleEvery int

	// Set by CreateSharded/OpenSharded so every shard publishes into one
	// registry, slow-query log and trace ring under a per-shard label.
	obsReg    *obs.Registry
	obsLog    *obs.QueryLog
	obsRing   *obs.TraceRing
	obsLabels obs.Labels

	// deviceHook, when set, wraps every raw device the store opens (keyed by
	// file name) before the retry and tracking layers. It is the fault-
	// injection seam store-level crash and corruption tests use; unexported
	// because only package-internal tests may reach it.
	deviceHook func(name string, dev storage.Device) storage.Device
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.20
	}
	if o.N == 0 {
		o.N = 2
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 10 << 20
	}
	if o.Metric == "" {
		o.Metric = "L2"
	}
	if o.Weights == "" {
		o.Weights = "EQU"
	}
	if o.NDFPenalty == 0 {
		o.NDFPenalty = metric.DefaultNDFPenalty
	}
	if o.CleanThreshold == 0 {
		o.CleanThreshold = 0.02
	}
	if o.GrowthRebuildFactor == 0 {
		o.GrowthRebuildFactor = 2
	}
	if o.SlowQueryLogSize == 0 {
		o.SlowQueryLogSize = 64
	}
	return o
}

// Store is a sparse wide table with its iVA-file index.
type Store struct {
	dir  string // "" for in-memory stores
	opts Options

	mu      sync.Mutex
	pool    *storage.Pool
	cat     *table.Catalog
	tbl     *table.Table
	tblFile *storage.File
	ix      *core.Index
	ixFile  *storage.File
	met     *metric.Metric

	// engineMu guards the engine pointers (ix, tbl, met) across rebuilds:
	// readers hold it shared for the duration of a query so a concurrent
	// rebuild cannot close the files under them; rebuildLocked takes it
	// exclusively for the swap.
	engineMu sync.RWMutex

	rebuilds    int64
	builtTuples int64 // live count at the last (re)build
	tidHeadroom int64 // extra id-space hint for the next (re)build
	closed      bool

	reg     *obs.Registry
	slowLog *obs.QueryLog
	ring    *obs.TraceRing
	disk    storage.DiskModel
	om      storeMetrics

	// Lifetime zone-map pruning tallies. They live on the Store, not the
	// Index, because rebuilds swap the Index out from under them; atomics
	// because searches run concurrently under the shared engine lock.
	zoneChecked atomic.Int64 // stripes whose zone record was consulted
	zonePruned  atomic.Int64 // stripes skipped outright on the zone bound

	// Replication state. trackers holds the write-range tracker of every
	// device the store opened (keyed by file name); they record nothing until
	// EnableReplSource arms them. replP is non-nil on a delta-shipping
	// primary, fol on a log-applying follower, repairer when a read-repair
	// peer is configured.
	trkMu    sync.Mutex
	trackers map[string]*storage.TrackDevice
	replP    *replPrimary
	fol      *followerState
	repairer *repairer
	// replicaCur is non-nil when the directory carries a follower cursor
	// (repl-state.json), whether or not a poll loop is attached: the durable
	// bytes are a synced prefix of some primary, and any local mutation —
	// including a bare Sync's superblock rewrite — would fork them from the
	// generation the cursor names. Such a store is read-only even under
	// plain Open (e.g. `ivatool -dir <replica> insert` while the follower
	// process serves the same directory).
	replicaCur *followerDurableState
}

// followerReadOnly reports whether local mutations must be refused: either a
// live follower poll loop owns the store, or the directory holds a follower
// cursor that local writes would invalidate.
func (s *Store) followerReadOnly() bool {
	return s.fol != nil || s.replicaCur != nil
}

// storeMetrics caches the store's registry handles so the hot path never
// takes the registry lock.
type storeMetrics struct {
	queries     *obs.Counter
	queryErrs   *obs.Counter
	slowQueries *obs.Counter
	inserts     *obs.Counter
	deletes     *obs.Counter
	updates     *obs.Counter
	rebuilds    *obs.Counter
	scanned     *obs.Counter
	accesses    *obs.Counter
	corruptSegs *obs.Counter
	devRetries  *obs.Counter
	zoneChecked *obs.Counter
	zonePruned  *obs.Counter
	queryDur    *obs.Histogram
	filterDur   *obs.Histogram
	refineDur   *obs.Histogram
	mergeDur    *obs.Histogram
	filterReads *obs.Histogram
	refineReads *obs.Histogram
}

// physReadBuckets bound per-query physical page reads per phase: powers of
// two from the all-cached query (0) to a badly I/O-bound scan.
var physReadBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// initObs wires the store into its metrics registry and slow-query log
// (shared ones when the store is a shard, private ones otherwise).
func (s *Store) initObs() {
	s.reg = s.opts.obsReg
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.slowLog = s.opts.obsLog
	if s.slowLog == nil {
		s.slowLog = obs.NewQueryLog(s.opts.SlowQueryThreshold, s.opts.SlowQueryLogSize)
	}
	s.ring = s.opts.obsRing
	if s.ring == nil && s.opts.obsReg == nil {
		s.ring = obs.NewTraceRing(s.opts.TraceRingSize, s.opts.TraceSampleEvery)
	}
	s.disk = storage.DefaultDiskModel()
	labels := s.opts.obsLabels
	if s.opts.obsReg == nil {
		registerBuildInfo(s.reg)
	}

	s.pool.RegisterPoolMetrics(s.reg, labels, s.disk)

	s.om = storeMetrics{
		queries:     s.reg.Counter("iva_queries_total", "Search queries served.", labels),
		queryErrs:   s.reg.Counter("iva_query_errors_total", "Search queries that returned an error.", labels),
		slowQueries: s.reg.Counter("iva_slow_queries_total", "Queries at or above the slow-query threshold.", labels),
		inserts:     s.reg.Counter("iva_inserts_total", "Tuples inserted.", labels),
		deletes:     s.reg.Counter("iva_deletes_total", "Tuples deleted.", labels),
		updates:     s.reg.Counter("iva_updates_total", "Tuples updated.", labels),
		rebuilds:    s.reg.Counter("iva_rebuilds_total", "Table/index file rebuilds.", labels),
		scanned:     s.reg.Counter("iva_query_scanned_tuples_total", "Tuple-list entries filtered across all queries.", labels),
		accesses:    s.reg.Counter("iva_query_table_accesses_total", "Random table-file accesses across all queries.", labels),
		corruptSegs: s.reg.Counter("iva_corrupt_segments_total", "Corrupt vector-list segments queries degraded past.", labels),
		devRetries:  s.reg.Counter("iva_device_retries_total", "Device operations retried after transient kernel errors.", labels),
		zoneChecked: s.reg.Counter("iva_zonemap_stripes_checked_total", "Stripes whose zone-map record was consulted at claim time.", labels),
		zonePruned:  s.reg.Counter("iva_zonemap_stripes_pruned_total", "Stripes skipped outright because their zone lower bound could not beat the top-k bar.", labels),
		queryDur:    s.reg.Histogram("iva_query_duration_seconds", "End-to-end search latency.", labels, nil),
		filterDur: s.reg.Histogram("iva_query_phase_duration_seconds", "Per-phase search latency.",
			obs.With(labels, "phase", "filter"), nil),
		refineDur: s.reg.Histogram("iva_query_phase_duration_seconds", "Per-phase search latency.",
			obs.With(labels, "phase", "refine"), nil),
		mergeDur: s.reg.Histogram("iva_query_phase_duration_seconds", "Per-phase search latency.",
			obs.With(labels, "phase", "merge"), nil),
		filterReads: s.reg.Histogram("iva_query_phase_phys_reads", "Physical page reads per query, by phase.",
			obs.With(labels, "phase", "filter"), physReadBuckets),
		refineReads: s.reg.Histogram("iva_query_phase_phys_reads", "Physical page reads per query, by phase.",
			obs.With(labels, "phase", "refine"), physReadBuckets),
	}

	// Store-shape gauges read live under the engine lock at scrape time.
	s.reg.GaugeFunc("iva_tuples_live", "Live tuples in the store.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.tbl.Live())
	})
	s.reg.GaugeFunc("iva_tuples_deleted", "Tombstoned tuples awaiting cleaning.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.ix.Deleted())
	})
	s.reg.GaugeFunc("iva_attributes", "Registered attributes.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.cat.NumAttrs())
	})
	s.reg.GaugeFunc("iva_table_bytes", "Table file size.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.tbl.Bytes())
	})
	s.reg.GaugeFunc("iva_index_bytes", "iVA-file size.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.ix.SizeBytes())
	})
	s.reg.GaugeFunc("iva_search_workers", "Workers a search dispatched now would run with.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.ix.SearchWorkers())
	})
	s.reg.GaugeFunc("iva_format_legacy", "1 while the index file predates format v4 (no checksum coverage until the next sync).", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		if s.ix.FormatVersion() < 4 {
			return 1
		}
		return 0
	})
	s.reg.GaugeFunc("iva_format_version", "Committed on-disk format version of the index file.", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.ix.FormatVersion())
	})
	s.reg.GaugeFunc("iva_zonemap_coverage_ratio", "Fraction of sealed stripes with a known zone-map record (0 when zone maps are absent or disabled on disk).", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		known, sealed := s.ix.ZoneMapCoverage()
		if sealed == 0 {
			return 0
		}
		return float64(known) / float64(sealed)
	})
	s.reg.GaugeFunc("iva_zonemap_dropped_records", "Zone-map records dropped at open after failing verification (DegradeReads).", labels, func() float64 {
		s.engineMu.RLock()
		defer s.engineMu.RUnlock()
		return float64(s.ix.DroppedZones())
	})
}

// registerBuildInfo publishes the binary's build metadata as a constant-1
// gauge whose labels carry the interesting values, the Prometheus convention
// for joining version info onto other series. Called once per registry (a
// Sharded partition registers it on the shared registry, not per shard).
func registerBuildInfo(reg *obs.Registry) {
	labels := obs.Labels{"go_version": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			labels["module"] = bi.Main.Path
		}
		if bi.Main.Version != "" {
			labels["version"] = bi.Main.Version
		}
		for _, st := range bi.Settings {
			if st.Key == "vcs.revision" && st.Value != "" {
				rev := st.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				labels["revision"] = rev
			}
		}
	}
	reg.GaugeFunc("iva_build_info", "Build metadata; the value is always 1.", labels, func() float64 { return 1 })
}

const (
	tableFileName   = "table.swt"
	indexFileName   = "iva.idx"
	catalogFileName = "catalog.bin"
)

// coreOptions resolves the store options against the current catalog
// (per-attribute α overrides are keyed by name publicly, by id internally).
func (s *Store) coreOptions() core.Options {
	opts := core.Options{
		Alpha: s.opts.Alpha, N: s.opts.N, TIDHeadroom: s.tidHeadroom,
		SearchParallelism: s.opts.SearchParallelism,
		Integrity:         core.IntegrityMode(s.opts.Integrity),
		DisableZoneMaps:   s.opts.DisableZoneMaps,
		Codec:             s.opts.Codec,
	}
	if len(s.opts.AlphaPerAttr) > 0 {
		opts.AlphaOverride = make(map[model.AttrID]float64, len(s.opts.AlphaPerAttr))
		for name, alpha := range s.opts.AlphaPerAttr {
			if id, ok := s.cat.Lookup(name); ok {
				opts.AlphaOverride[id] = alpha
			}
		}
	}
	return opts
}

// Create makes a new store in dir, or a volatile in-memory store when dir
// is empty. An existing directory must not already contain a store.
func Create(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{dir: dir, opts: opts, pool: storage.NewPoolShards(opts.PageSize, opts.CacheBytes, opts.CacheShards)}
	s.cat = table.NewCatalog()
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("iva: create %s: %w", dir, err)
		}
		if _, err := os.Stat(filepath.Join(dir, catalogFileName)); err == nil {
			return nil, fmt.Errorf("iva: store already exists in %s", dir)
		}
	}
	tblDev, err := s.device(tableFileName)
	if err != nil {
		return nil, err
	}
	s.tblFile = storage.NewFile(s.pool, tblDev)
	if s.tbl, err = table.New(s.tblFile, s.cat); err != nil {
		return nil, err
	}
	ixDev, err := s.device(indexFileName)
	if err != nil {
		return nil, err
	}
	s.ixFile = storage.NewFile(s.pool, ixDev)
	if s.ix, err = core.Build(s.tbl, s.ixFile, s.coreOptions()); err != nil {
		return nil, err
	}
	if err := s.buildMetric(); err != nil {
		return nil, err
	}
	s.initObs()
	return s, nil
}

// Open attaches to a store previously created in dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if dir == "" {
		return nil, fmt.Errorf("iva: Open requires a directory; use Create for in-memory stores")
	}
	blob, err := os.ReadFile(filepath.Join(dir, catalogFileName))
	if err != nil {
		return nil, fmt.Errorf("iva: open catalog: %w", err)
	}
	cat, err := table.DecodeCatalog(blob)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, pool: storage.NewPoolShards(opts.PageSize, opts.CacheBytes, opts.CacheShards), cat: cat}
	if cur, err := loadFollowerState(dir); err == nil {
		s.replicaCur = &cur
	}
	tblDev, err := s.device(tableFileName)
	if err != nil {
		return nil, err
	}
	s.tblFile = storage.NewFile(s.pool, tblDev)
	if s.tbl, err = table.Open(s.tblFile, cat); err != nil {
		return nil, err
	}
	ixDev, err := s.device(indexFileName)
	if err != nil {
		return nil, err
	}
	s.ixFile = storage.NewFile(s.pool, ixDev)
	if s.ix, err = core.Open(s.ixFile, s.tbl, s.coreOptions()); err != nil {
		return nil, err
	}
	s.builtTuples = s.tbl.Live()
	if err := s.buildMetric(); err != nil {
		return nil, err
	}
	s.initObs()
	return s, nil
}

func (s *Store) device(name string) (storage.Device, error) {
	var dev storage.Device
	if s.dir == "" {
		dev = storage.NewMemDevice()
	} else {
		var err error
		if dev, err = storage.OpenFileDevice(filepath.Join(s.dir, name)); err != nil {
			return nil, err
		}
	}
	if s.opts.deviceHook != nil {
		dev = s.opts.deviceHook(name, dev)
	}
	// Transient kernel errors (EINTR/EAGAIN) retry with backoff instead of
	// failing the query. The metric handle is nil until initObs; retries
	// before that (none in practice — devices see no I/O until the store is
	// wired up) are simply not counted.
	rd := storage.NewRetryDevice(dev)
	rd.OnRetry(func() {
		if c := s.om.devRetries; c != nil {
			c.Inc()
		}
	})
	// The outermost tracker records which byte ranges are written between
	// Syncs — the raw material of replication deltas. Disarmed (free) unless
	// the store becomes a replication primary.
	td := storage.NewTrackDevice(rd)
	s.trkMu.Lock()
	if s.trackers == nil {
		s.trackers = make(map[string]*storage.TrackDevice)
	}
	s.trackers[name] = td
	s.trkMu.Unlock()
	return td, nil
}

// tracker returns the write tracker of the named store file.
func (s *Store) tracker(name string) *storage.TrackDevice {
	s.trkMu.Lock()
	defer s.trkMu.Unlock()
	return s.trackers[name]
}

func (s *Store) buildMetric() error {
	comb, err := metric.ByName(s.opts.Metric)
	if err != nil {
		return err
	}
	var w metric.Weighter
	switch s.opts.Weights {
	case "EQU":
		w = metric.Equal{}
	case "ITF":
		cat := s.cat
		tbl := s.tbl
		w = metric.NewITF(tbl.Live, func(a model.AttrID) int64 {
			info, err := cat.Info(a)
			if err != nil {
				return 0
			}
			return info.DF
		})
	default:
		return fmt.Errorf("iva: unknown weighting scheme %q", s.opts.Weights)
	}
	s.met = &metric.Metric{Combiner: comb, Weighter: w, NDFPenalty: s.opts.NDFPenalty}
	return nil
}

// DefineAttr registers an attribute ahead of use (Insert also registers
// attributes implicitly from value kinds).
func (s *Store) DefineAttr(name string, kind Kind) error {
	_, err := s.cat.AddAttr(name, kind.internal())
	return err
}

// resolveRow maps names to ids, registering new attributes.
func (s *Store) resolveRow(row Row) (map[model.AttrID]model.Value, error) {
	if len(row) == 0 {
		return nil, fmt.Errorf("iva: empty row")
	}
	out := make(map[model.AttrID]model.Value, len(row))
	for name, v := range row {
		id, err := s.cat.AddAttr(name, v.v.Kind)
		if err != nil {
			return nil, err
		}
		if err := v.v.Validate(); err != nil {
			return nil, fmt.Errorf("iva: attribute %q: %w", name, err)
		}
		out[id] = v.v
	}
	return out, nil
}

// Insert stores a row and returns its tuple id. New attribute names are
// registered with the kind of their value. A packed-width overflow triggers
// a transparent rebuild and retry.
func (s *Store) Insert(row Row) (TID, error) {
	if s.followerReadOnly() {
		return 0, ErrFollower
	}
	vals, err := s.resolveRow(row)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tid, err := s.ix.Insert(vals)
	if err == core.ErrNeedsRebuild {
		if err = s.rebuildLocked(); err != nil {
			return 0, err
		}
		tid, err = s.ix.Insert(vals)
	}
	if err != nil {
		return 0, err
	}
	s.om.inserts.Inc()
	if err := s.maybeGrowthRebuild(); err != nil {
		return 0, err
	}
	return TID(tid), nil
}

// maybeGrowthRebuild applies the §III-C renewal policy: rebuild once the
// store has grown past GrowthRebuildFactor times its size at the last
// build, so relative domains, list types and packed widths track the data.
func (s *Store) maybeGrowthRebuild() error {
	f := s.opts.GrowthRebuildFactor
	if f <= 0 {
		return nil
	}
	live := s.tbl.Live()
	bar := float64(s.builtTuples) * f
	if bar < 64 {
		bar = 64
	}
	if float64(live) < bar {
		return nil
	}
	return s.rebuildLocked()
}

// InsertBatch stores several rows in one critical section — the bulk-feed
// ingestion path. Rows receive consecutive ids, returned in order; on error
// nothing is inserted. A packed-width overflow triggers one transparent
// rebuild and retry.
func (s *Store) InsertBatch(rows []Row) ([]TID, error) {
	if s.followerReadOnly() {
		return nil, ErrFollower
	}
	batch := make([]map[model.AttrID]model.Value, len(rows))
	for i, row := range rows {
		vals, err := s.resolveRow(row)
		if err != nil {
			return nil, fmt.Errorf("iva: row %d: %w", i, err)
		}
		batch[i] = vals
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tids, err := s.ix.InsertBatch(batch)
	if err == core.ErrNeedsRebuild {
		// The rebuild must leave id space for the whole batch.
		s.tidHeadroom = int64(len(batch)) * 2
		if s.tidHeadroom < 1024 {
			s.tidHeadroom = 1024
		}
		rerr := s.rebuildLocked()
		s.tidHeadroom = 0
		if rerr != nil {
			return nil, rerr
		}
		tids, err = s.ix.InsertBatch(batch)
	}
	if err != nil {
		return nil, err
	}
	s.om.inserts.Add(int64(len(tids)))
	if err := s.maybeGrowthRebuild(); err != nil {
		return nil, err
	}
	out := make([]TID, len(tids))
	for i, tid := range tids {
		out[i] = TID(tid)
	}
	return out, nil
}

// Delete removes a tuple. When the tombstone fraction reaches the cleaning
// threshold β, the store rebuilds its files (§IV-B).
func (s *Store) Delete(tid TID) error {
	if s.followerReadOnly() {
		return ErrFollower
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ix.Delete(model.TID(tid)); err != nil {
		if err == core.ErrNotFound {
			return ErrNotFound
		}
		return err
	}
	s.om.deletes.Inc()
	if s.opts.CleanThreshold > 0 && s.ix.DeletedFraction() >= s.opts.CleanThreshold {
		return s.rebuildLocked()
	}
	return nil
}

// Update replaces a tuple's row under a fresh id, which is returned.
func (s *Store) Update(tid TID, row Row) (TID, error) {
	if s.followerReadOnly() {
		return 0, ErrFollower
	}
	vals, err := s.resolveRow(row)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ix.Delete(model.TID(tid)); err != nil {
		if err == core.ErrNotFound {
			return 0, ErrNotFound
		}
		return 0, err
	}
	newTID, err := s.ix.Insert(vals)
	if err == core.ErrNeedsRebuild {
		if err = s.rebuildLocked(); err != nil {
			return 0, err
		}
		newTID, err = s.ix.Insert(vals)
	}
	if err != nil {
		return 0, err
	}
	if s.opts.CleanThreshold > 0 && s.ix.DeletedFraction() >= s.opts.CleanThreshold {
		if err := s.rebuildLocked(); err != nil {
			return 0, err
		}
	} else if err := s.maybeGrowthRebuild(); err != nil {
		return 0, err
	}
	s.om.updates.Inc()
	return TID(newTID), nil
}

// Get returns a live tuple's row.
func (s *Store) Get(tid TID) (Row, error) {
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	tp, err := s.ix.Fetch(model.TID(tid))
	if err != nil {
		if err == core.ErrNotFound {
			return nil, ErrNotFound
		}
		return nil, err
	}
	row := make(Row, len(tp.Values))
	for id, v := range tp.Values {
		info, err := s.cat.Info(id)
		if err != nil {
			return nil, err
		}
		row[info.Name] = Value{v}
	}
	return row, nil
}

// QueryStats reports one query's work (see the paper's Figs. 8–10).
type QueryStats struct {
	// Scanned is the number of live tuples filtered.
	Scanned int64
	// TableAccesses is the number of random table-file reads.
	TableAccesses int64
	// FilterTime and RefineTime split the wall time between scanning the
	// index and checking candidates in the table file.
	FilterTime time.Duration
	RefineTime time.Duration
	// CacheHits and PhysReads split the query's page requests between the
	// buffer pool and the device, and DiskCostMS prices the physical I/O
	// under the 2009-HDD disk model — the machine-independent cost the
	// paper's figures reason about.
	CacheHits  int64
	PhysReads  int64
	DiskCostMS float64
	// Workers is the number of filter workers the executed plan ran with
	// (1 for the sequential plan; on a Sharded store, the largest shard's).
	Workers int
	// DegradedSegments counts the distinct corrupt vector-list segments the
	// query read past under DegradeReads. Zero on a healthy store; any
	// other value means the results are still exact but the index needs a
	// scrub and rebuild (on a Sharded store, the per-shard sum).
	DegradedSegments int
	// TraceID is the 16-hex-digit id of the query's trace — the join key
	// into the sampled trace ring (WriteTraces, /debug/trace), the
	// slow-query log, and the latency histogram's exemplars.
	TraceID string
	// Phase is the per-phase profile of the executed plan: filter/refine/
	// merge wall time, the striped plan's work distribution per worker, and
	// the buffer pool hit ratio. Always populated by Search (profiling is
	// free); SearchProfiled renders it EXPLAIN ANALYZE-style.
	Phase *PhaseProfile
	// Shards holds the per-shard breakdown when the query ran on a
	// Sharded store (nil on a single store). The top-level counters are
	// sums; the times are the slowest shard's (the critical path).
	Shards []QueryStats
}

// Search answers a top-k structured similarity query. Unknown attribute
// names are treated as undefined everywhere (every tuple gets the ndf
// penalty on them).
//
// Every search is traced (a handful of spans per query) and feeds the
// store's metrics registry; a query at or above Options.SlowQueryThreshold
// is captured in the slow-query log with its full per-term trace.
func (s *Store) Search(q *Query) ([]Result, QueryStats, error) {
	return s.search(context.Background(), q, nil)
}

// search runs one query under a trace span. A non-nil parent adopts the
// query's trace (the sharded fan-out), and then the slow-query decision is
// the parent's: only root queries are logged, so a slow fan-out appears once
// with its per-shard children rather than once per shard.
func (s *Store) search(ctx context.Context, q *Query, parent *obs.Span) ([]Result, QueryStats, error) {
	var qs QueryStats
	if q.err != nil {
		return nil, qs, q.err
	}
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}
	sp := obs.StartSpan("query")
	parent.Adopt(sp)
	if shard, ok := s.opts.obsLabels["shard"]; ok {
		sp.SetStr("shard", shard)
	}
	sp.SetInt("k", int64(q.k))

	// The engine lock covers term resolution too: a follower's delta apply
	// swaps the catalog pointer together with the engine, so s.cat must not
	// be read outside it.
	s.engineMu.RLock()
	plan := sp.Child("plan")
	mq := &model.Query{K: q.k}
	for _, t := range q.terms {
		id, ok := s.cat.Lookup(t.attr)
		if !ok {
			// Register lazily so the term participates (as all-ndf).
			var err error
			id, err = s.cat.AddAttr(t.attr, t.kind.internal())
			if err != nil {
				s.engineMu.RUnlock()
				return nil, qs, err
			}
		}
		mq.Terms = append(mq.Terms, model.QueryTerm{
			Attr: id, Kind: t.kind.internal(), Num: t.num, Str: t.str, Weight: t.weight,
		})
	}
	plan.SetInt("terms", int64(len(mq.Terms)))
	plan.End()

	res, st, err := s.ix.SearchTracedContext(ctx, mq, s.met, sp)
	s.engineMu.RUnlock()
	if len(st.DegradedSegIDs) > 0 {
		s.enqueueRepair(st.DegradedSegIDs)
	}
	if err != nil {
		sp.End()
		s.om.queryErrs.Inc()
		// Partial stats still describe the work done before the failure —
		// a cancelled query reports how far it got.
		qs.Scanned = st.Scanned
		qs.TableAccesses = st.TableAccesses
		qs.Workers = st.Workers
		qs.DegradedSegments = st.DegradedSegments
		return nil, qs, err
	}
	// The root span (and so the slow-query log) records the merged final
	// result count and the executed plan's worker count — not the requested k
	// or a per-worker pool size, which mislead when k exceeds the live count
	// or the striped plan ran.
	sp.SetInt("results", int64(len(res)))
	sp.SetInt("workers", int64(st.Workers))
	sp.End()

	io := st.FilterIO.Add(st.RefineIO)
	workers := make([]WorkerProfile, len(st.WorkerProfiles))
	for i, w := range st.WorkerProfiles {
		workers[i] = WorkerProfile{Stripes: w.Stripes, ZonePruned: w.ZonePruned, Scanned: w.Scanned, Fetched: w.Fetched, Busy: w.Busy}
	}
	var hitRatio float64
	if total := io.CacheHits + io.PhysReads; total > 0 {
		hitRatio = float64(io.CacheHits) / float64(total)
	}
	qs = QueryStats{
		Scanned:          st.Scanned,
		TableAccesses:    st.TableAccesses,
		FilterTime:       st.FilterWall,
		RefineTime:       st.RefineWall,
		CacheHits:        io.CacheHits,
		PhysReads:        io.PhysReads,
		DiskCostMS:       s.disk.CostMS(io),
		Workers:          st.Workers,
		DegradedSegments: st.DegradedSegments,
		TraceID:          sp.TraceID(),
		Phase: &PhaseProfile{
			FilterTime:         st.FilterWall,
			RefineTime:         st.RefineWall,
			MergeTime:          st.MergeWall,
			StripesTotal:       st.StripesTotal,
			StripesSkipped:     st.StripesSkipped,
			StripesZoneChecked: st.StripesZoneChecked,
			StripesZonePruned:  st.StripesZonePruned,
			Workers:            workers,
			PoolHitRatio:       hitRatio,
		},
	}
	if st.DegradedSegments > 0 {
		s.om.corruptSegs.Add(int64(st.DegradedSegments))
	}
	if st.StripesZoneChecked > 0 {
		s.zoneChecked.Add(int64(st.StripesZoneChecked))
		s.om.zoneChecked.Add(int64(st.StripesZoneChecked))
	}
	if st.StripesZonePruned > 0 {
		s.zonePruned.Add(int64(st.StripesZonePruned))
		s.om.zonePruned.Add(int64(st.StripesZonePruned))
	}
	s.om.queries.Inc()
	s.om.scanned.Add(st.Scanned)
	s.om.accesses.Add(st.TableAccesses)
	s.om.queryDur.ObserveTrace(sp.Duration().Seconds(), qs.TraceID)
	s.om.filterDur.Observe(st.FilterWall.Seconds())
	s.om.refineDur.Observe(st.RefineWall.Seconds())
	s.om.mergeDur.Observe(st.MergeWall.Seconds())
	s.om.filterReads.Observe(float64(st.FilterIO.PhysReads))
	s.om.refineReads.Observe(float64(st.RefineIO.PhysReads))
	if parent == nil {
		if s.slowLog.ObserveEntry(obs.LogEntry{
			Query:    q.describe(),
			Duration: sp.Duration(),
			Trace:    sp,
			Phases:   phaseBreakdown(qs),
		}) {
			s.om.slowQueries.Inc()
			s.ring.Force(sp)
		} else {
			s.ring.Offer(sp)
		}
	}

	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{TID: TID(r.TID), Dist: r.Dist}
	}
	return out, qs, nil
}

// WriteMetrics serializes every metric of the store's registry in the
// Prometheus text exposition format (text/plain; version=0.0.4): query
// latency and per-phase histograms, insert/delete/rebuild counters, buffer
// pool cache and seq/near/rand I/O counters, modeled disk cost, and the
// store-shape gauges. On a shard it writes the whole partition's registry.
func (s *Store) WriteMetrics(w io.Writer) error { return s.reg.WritePrometheus(w) }

// MetricsText returns WriteMetrics output as a string.
func (s *Store) MetricsText() string { return s.reg.Text() }

// WriteSlowQueries serializes the slow-query log, newest first, as a JSON
// array of {time, query, duration_ms, trace} objects where trace is the full
// span tree of the offending query (filter with per-term children, refine,
// fetch). The log is empty unless Options.SlowQueryThreshold is set.
func (s *Store) WriteSlowQueries(w io.Writer) error { return s.slowLog.WriteJSON(w) }

// WriteSlowQueriesText renders the slow-query log one line per entry, newest
// first, with each entry's trace id and phase breakdown — the human-paged
// form of WriteSlowQueries.
func (s *Store) WriteSlowQueriesText(w io.Writer) error { return s.slowLog.WriteText(w) }

// SlowQueryCount reports how many queries ever met the slow-query threshold.
func (s *Store) SlowQueryCount() int64 { return s.slowLog.Total() }

// Rebuild rewrites the table and index files, dropping tombstones and
// re-deriving numeric domains and list layouts. It is called automatically
// by the cleaning policy but may be invoked explicitly.
func (s *Store) Rebuild() error {
	if s.followerReadOnly() {
		return ErrFollower
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildLocked()
}

func (s *Store) rebuildLocked() error {
	newTblDev, err := s.device(tableFileName + ".new")
	if err != nil {
		return err
	}
	newTblFile := storage.NewFile(s.pool, newTblDev)
	newTbl, _, err := s.tbl.Rebuild(newTblFile, func(tid model.TID) bool { return s.ix.Live(tid) })
	if err != nil {
		return err
	}
	newIxDev, err := s.device(indexFileName + ".new")
	if err != nil {
		return err
	}
	newIxFile := storage.NewFile(s.pool, newIxDev)
	newIx, err := core.Build(newTbl, newIxFile, s.coreOptions())
	if err != nil {
		return err
	}
	// Swap in the new files; on disk, rename over the old names. The
	// exclusive engine lock drains in-flight readers before the old files
	// close under them.
	s.engineMu.Lock()
	oldTbl, oldIx := s.tblFile, s.ixFile
	s.tbl, s.tblFile = newTbl, newTblFile
	s.ix, s.ixFile = newIx, newIxFile
	oldTbl.Close()
	oldIx.Close()
	merr := s.buildMetric()
	s.engineMu.Unlock()
	if merr != nil {
		return merr
	}
	if s.dir != "" {
		if err := os.Rename(filepath.Join(s.dir, tableFileName+".new"), filepath.Join(s.dir, tableFileName)); err != nil {
			return err
		}
		if err := os.Rename(filepath.Join(s.dir, indexFileName+".new"), filepath.Join(s.dir, indexFileName)); err != nil {
			return err
		}
	}
	// The renamed-in files carry the trackers opened under the ".new" names.
	s.trkMu.Lock()
	if s.trackers != nil {
		s.trackers[tableFileName] = s.trackers[tableFileName+".new"]
		s.trackers[indexFileName] = s.trackers[indexFileName+".new"]
		delete(s.trackers, tableFileName+".new")
		delete(s.trackers, indexFileName+".new")
	}
	s.trkMu.Unlock()
	// A rebuild replaces the files wholesale: in-place deltas cannot continue
	// across it, so the retained log is invalidated and followers fall back
	// to a snapshot.
	if s.replP != nil {
		s.replInvalidateLocked()
	}
	s.rebuilds++
	s.om.rebuilds.Inc()
	s.builtTuples = s.tbl.Live()
	return nil
}

// IOStats are the buffer pool's cumulative physical-I/O counters, with
// reads broken down by the paper's seq/near/rand access classes.
type IOStats struct {
	PhysReads  int64
	PhysWrites int64
	CacheHits  int64
	SeqReads   int64
	NearReads  int64
	RandReads  int64
}

// HitRate returns the fraction of page requests served by the cache.
func (a IOStats) HitRate() float64 {
	total := a.CacheHits + a.PhysReads
	if total == 0 {
		return 0
	}
	return float64(a.CacheHits) / float64(total)
}

// Add returns the counter-wise sum a+b.
func (a IOStats) Add(b IOStats) IOStats {
	return IOStats{
		PhysReads:  a.PhysReads + b.PhysReads,
		PhysWrites: a.PhysWrites + b.PhysWrites,
		CacheHits:  a.CacheHits + b.CacheHits,
		SeqReads:   a.SeqReads + b.SeqReads,
		NearReads:  a.NearReads + b.NearReads,
		RandReads:  a.RandReads + b.RandReads,
	}
}

// StoreStats summarize the store's current shape.
type StoreStats struct {
	Tuples     int64 // live tuples
	Deleted    int64 // tombstoned tuples awaiting cleaning
	Attributes int   // registered attributes
	TableBytes int64
	IndexBytes int64
	Rebuilds   int64
	IO         IOStats // buffer pool counters over the store's lifetime

	// Zone-map shape and lifetime pruning effectiveness. ZoneSealed is the
	// number of full stripes the index holds; ZoneKnown of them carry a
	// usable zone record (coverage = known/sealed). ZoneChecked/ZonePruned
	// are lifetime stripe-claim tallies across every query — their ratio is
	// the store's observed prune rate.
	ZoneKnown   int
	ZoneSealed  int
	ZoneDropped int
	ZoneChecked int64
	ZonePruned  int64
	ZoneMapsOn  bool
}

// Stats returns current store statistics.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.pool.Stats().Snapshot()
	known, sealed := s.ix.ZoneMapCoverage()
	return StoreStats{
		Tuples:      s.tbl.Live(),
		Deleted:     s.ix.Deleted(),
		Attributes:  s.cat.NumAttrs(),
		TableBytes:  s.tbl.Bytes(),
		IndexBytes:  s.ix.SizeBytes(),
		Rebuilds:    s.rebuilds,
		ZoneKnown:   known,
		ZoneSealed:  sealed,
		ZoneDropped: s.ix.DroppedZones(),
		ZoneChecked: s.zoneChecked.Load(),
		ZonePruned:  s.zonePruned.Load(),
		ZoneMapsOn:  s.ix.ZoneMapsOn(),
		IO: IOStats{
			PhysReads:  snap.PhysReads,
			PhysWrites: snap.PhysWrites,
			CacheHits:  snap.CacheHits,
			SeqReads:   snap.SeqReads,
			NearReads:  snap.NearReads,
			RandReads:  snap.RandReads,
		},
	}
}

// TermExplain reports one query term's filtering behavior (see Explain).
type TermExplain struct {
	Attr     string
	Kind     Kind
	ListType string
	Alpha    float64
	Defined  int64   // tuples with an indexed value on the attribute
	NDF      int64   // tuples undefined on it
	MeanEst  float64 // mean lower bound over defined tuples
	MinEst   float64
	MaxEst   float64
	// Tightness is mean(lower bound / exact difference) over the tuples a
	// real search fetches: 1.0 means the index's bounds are perfect, small
	// values mean the signatures are too short to discriminate (raise α).
	Tightness float64
}

// QueryExplain is the instrumented result of Explain.
type QueryExplain struct {
	Results      []Result
	Scanned      int64
	Fetched      int64
	PoolMaxFinal float64 // the k-th distance: the bar estimates must beat
	Terms        []TermExplain
}

// Explain runs a query with per-term instrumentation: how each attribute's
// approximation vectors bounded the differences, and how tight those bounds
// were. It is the tuning companion to the α/n options; it runs the scan
// twice, so keep it off hot paths.
func (s *Store) Explain(q *Query) (*QueryExplain, error) {
	if q.err != nil {
		return nil, q.err
	}
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	mq := &model.Query{K: q.k}
	names := make(map[model.AttrID]string)
	for _, t := range q.terms {
		id, ok := s.cat.Lookup(t.attr)
		if !ok {
			var err error
			if id, err = s.cat.AddAttr(t.attr, t.kind.internal()); err != nil {
				return nil, err
			}
		}
		names[id] = t.attr
		mq.Terms = append(mq.Terms, model.QueryTerm{
			Attr: id, Kind: t.kind.internal(), Num: t.num, Str: t.str, Weight: t.weight,
		})
	}
	ex, err := s.ix.ExplainSearch(mq, s.met)
	if err != nil {
		return nil, err
	}
	out := &QueryExplain{
		Scanned:      ex.Scanned,
		Fetched:      ex.Fetched,
		PoolMaxFinal: ex.PoolMaxFinal,
	}
	for _, r := range ex.Results {
		out.Results = append(out.Results, Result{TID: TID(r.TID), Dist: r.Dist})
	}
	for _, te := range ex.Terms {
		out.Terms = append(out.Terms, TermExplain{
			Attr:      names[te.Attr],
			Kind:      kindFrom(te.Kind),
			ListType:  te.ListType.String(),
			Alpha:     te.Alpha,
			Defined:   te.Defined,
			NDF:       te.NDF,
			MeanEst:   te.MeanEst,
			MinEst:    te.MinEst,
			MaxEst:    te.MaxEst,
			Tightness: te.Tightness,
		})
	}
	return out, nil
}

// Scan enumerates every live tuple in tuple-list order (a sequential pass
// over the table file). The callback returns false to stop early. The store
// is locked for the duration; do not call Store methods from fn.
func (s *Store) Scan(fn func(TID, Row) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	stop := false
	err := s.tbl.Scan(func(_ int64, tp *model.Tuple) error {
		if stop || !s.ix.Live(tp.TID) {
			return nil
		}
		row := make(Row, len(tp.Values))
		for id, v := range tp.Values {
			info, err := s.cat.Info(id)
			if err != nil {
				return err
			}
			row[info.Name] = Value{v}
		}
		if !fn(TID(tp.TID), row) {
			stop = true
		}
		return nil
	})
	return err
}

// CheckReport summarizes a Check run.
type CheckReport struct {
	Entries     int64
	Live        int64
	Attributes  int
	VectorElems int64
	Problems    []string
}

// Ok reports whether the check found no problems.
func (r CheckReport) Ok() bool { return len(r.Problems) == 0 }

// Check cross-validates the whole index against the table file: tuple-list
// order and pointers, every approximation vector against its stored value,
// and catalog statistics. Run it after crashes or migrations.
func (s *Store) Check() (CheckReport, error) {
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	rep, err := s.ix.Check()
	if err != nil {
		return CheckReport{}, err
	}
	return CheckReport{
		Entries:     rep.Entries,
		Live:        rep.Live,
		Attributes:  rep.Attributes,
		VectorElems: rep.VectorElems,
		Problems:    rep.Problems,
	}, nil
}

// AttrInfo describes one indexed attribute's layout.
type AttrInfo struct {
	Name     string
	Kind     Kind
	ListType string  // "I", "II", "III" or "IV" (§III-D)
	Alpha    float64 // relative vector length in effect
	Bits     int64   // vector list size in bits
	DF       int64   // tuples defining the attribute
	Strings  int64   // total strings (text attributes)
	Codec    string  // block codec the list is stored under (format v6)
	Blocks   int     // sealed block containers (packed codec only)
}

// Attrs reports every indexed attribute's layout, useful for inspecting
// the §III-D list-type selection and sizing on real data.
func (s *Store) Attrs() []AttrInfo {
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	var out []AttrInfo
	for _, r := range s.ix.Attrs() {
		out = append(out, AttrInfo{
			Name:     r.Name,
			Kind:     kindFrom(r.Kind),
			ListType: r.ListType.String(),
			Alpha:    r.Alpha,
			Bits:     r.BitLen,
			DF:       r.DF,
			Strings:  r.Str,
			Codec:    r.Codec,
			Blocks:   r.CodedBlocks,
		})
	}
	return out
}

// SetZoneMaps toggles stripe zone-map pruning at runtime (the live
// counterpart of Options.DisableZoneMaps). The per-stripe summaries keep
// being maintained either way; only their use at stripe-claim time changes,
// so flipping the switch never affects results. The setting sticks across
// rebuilds.
func (s *Store) SetZoneMaps(enabled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.DisableZoneMaps = !enabled
	s.engineMu.RLock()
	s.ix.SetZoneMaps(enabled)
	s.engineMu.RUnlock()
}

// ZoneMapsOn reports whether stripe zone-map pruning is currently in effect.
func (s *Store) ZoneMapsOn() bool {
	s.engineMu.RLock()
	defer s.engineMu.RUnlock()
	return s.ix.ZoneMapsOn()
}

// Sync checkpoints all files (catalog, table header, index metadata).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.followerReadOnly() {
		// A follower's durable state is exactly the applied synced prefix; a
		// local Sync would rewrite superblock/checksum-map bytes the next
		// delta assumes unchanged, forking the replica. There is nothing to
		// flush anyway — followers accept no local writes.
		return nil
	}
	if err := s.tbl.Sync(); err != nil {
		return err
	}
	if err := s.ix.Sync(); err != nil {
		return err
	}
	if s.dir != "" {
		if err := os.WriteFile(filepath.Join(s.dir, catalogFileName), s.cat.Encode(), 0o644); err != nil {
			return fmt.Errorf("iva: write catalog: %w", err)
		}
	}
	// A replication primary cuts one synced-prefix delta per committed
	// generation: the byte ranges written since the previous Sync, snapshotted
	// now that they are durable and self-consistent.
	if s.replP != nil {
		s.replCutLocked()
	}
	return nil
}

// Close checkpoints and releases the store. Closing twice is a no-op. On a
// follower the poll loop is stopped first; on any store the read-repair
// worker drains before the files close under it.
func (s *Store) Close() error {
	s.stopFollower()
	s.stopRepairer()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	s.closed = true
	if err := s.tblFile.Close(); err != nil {
		return err
	}
	return s.ixFile.Close()
}
