package iva

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/sparsewide/iva/internal/storage"
)

// TestGrowthRebuildSearchRace races maybeGrowthRebuild against concurrent
// SearchContext callers: with a low growth factor the insert stream keeps
// swapping the engines under the readers, and every search must either see
// the old generation or the new one — never an error, never in-flight bytes.
// Run with -race for the full assertion.
func TestGrowthRebuildSearchRace(t *testing.T) {
	st, err := Create(t.TempDir(), Options{GrowthRebuildFactor: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 80; i++ {
		if _, err := st.Insert(Row{
			"num": Num(float64(rng.Intn(300))),
			"cat": Strings(fmt.Sprintf("cat-%02d", rng.Intn(16))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var searches atomic.Int64
	errCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				q := NewQuery(1+r.Intn(10)).
					WhereNum("num", float64(r.Intn(300))).
					WhereText("cat", fmt.Sprintf("cat-%02d", r.Intn(16)))
				if _, _, err := st.SearchContext(ctx, q); err != nil && ctx.Err() == nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				searches.Add(1)
			}
		}(int64(g))
	}

	// The insert stream drives the store through several growth rebuilds
	// while the readers hammer it.
	rebuildsBefore := st.rebuilds
	for i := 0; i < 1200; i++ {
		if _, err := st.Insert(Row{
			"num": Num(float64(rng.Intn(300))),
			"cat": Strings(fmt.Sprintf("cat-%02d", rng.Intn(16))),
		}); err != nil {
			cancel()
			t.Fatal(err)
		}
	}
	cancel()
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent search failed during growth rebuilds: %v", err)
	default:
	}
	if st.rebuilds == rebuildsBefore {
		t.Fatal("insert stream triggered no growth rebuild; the race was not exercised")
	}
	if searches.Load() == 0 {
		t.Fatal("no search completed; the race was not exercised")
	}
}

// TestGrowthRebuildCrashSweep kills a growth rebuild at every I/O operation
// budget (a FaultDevice under the rebuild's ".new" files, torn writes on
// odd budgets) and requires the reopened store to land on a consistent
// generation: Open succeeds, a scrub is clean, and every previously synced
// row is intact.
func TestGrowthRebuildCrashSweep(t *testing.T) {
	type faultSet struct {
		mu     sync.Mutex
		budget int64
		torn   bool
		devs   []*storage.FaultDevice
	}
	// The growth bar is max(64, builtTuples*factor); with nothing built yet
	// it sits at 64 live tuples. Seed just below it so the sweep's fault
	// budget is consumed by exactly one rebuild, triggered on demand.
	const seedRows = 60
	completed := false
	for budget := int64(1); !completed; budget = budget + 1 + budget/4 {
		if budget > 100000 {
			t.Fatal("rebuild still tripping at budget 100000; sweep cannot terminate")
		}
		fs := &faultSet{budget: budget, torn: budget%2 == 1}
		opts := Options{
			// The growth bar must stay put across the sweep: rebuild exactly
			// when live reaches 2x the seeded build.
			GrowthRebuildFactor: 2,
			CleanThreshold:      1,
			deviceHook: func(name string, dev storage.Device) storage.Device {
				if !strings.HasSuffix(name, ".new") {
					return dev
				}
				fd := storage.NewFaultDevice(dev, fs.budget)
				fd.SetTornWrites(fs.torn)
				fs.mu.Lock()
				fs.devs = append(fs.devs, fd)
				fs.mu.Unlock()
				return fd
			},
		}
		dir := t.TempDir()
		st, err := Create(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(budget))
		rows := make([]Row, 0, seedRows)
		tids := make([]TID, 0, seedRows)
		for i := 0; i < seedRows; i++ {
			row := Row{
				"num": Num(float64(rng.Intn(500))),
				"cat": Strings(fmt.Sprintf("cat-%02d", rng.Intn(12))),
			}
			tid, err := st.Insert(row)
			if err != nil {
				t.Fatalf("budget %d: seed insert: %v", budget, err)
			}
			rows, tids = append(rows, row), append(tids, tid)
		}
		if err := st.Sync(); err != nil {
			t.Fatalf("budget %d: seed sync: %v", budget, err)
		}

		// Insert past the growth bar: the rebuild fires and runs into the
		// fault budget. Unsynced inserts may vanish in the crash — only the
		// synced prefix is owed.
		var rebuildErr error
		for i := 0; i < seedRows*2 && rebuildErr == nil; i++ {
			_, rebuildErr = st.Insert(Row{
				"num": Num(float64(rng.Intn(500))),
				"cat": Strings(fmt.Sprintf("cat-%02d", rng.Intn(12))),
			})
		}
		fs.mu.Lock()
		tripped := false
		for _, d := range fs.devs {
			tripped = tripped || d.Tripped()
		}
		nDevs := len(fs.devs)
		fs.mu.Unlock()
		if nDevs == 0 {
			t.Fatalf("budget %d: growth rebuild never started", budget)
		}
		if !tripped {
			// The whole rebuild fit in the budget: the sweep has covered
			// every failure point. One last pass must have succeeded cleanly.
			if rebuildErr != nil {
				t.Fatalf("budget %d: no device tripped but insert failed: %v", budget, rebuildErr)
			}
			completed = true
		} else if rebuildErr == nil {
			t.Fatalf("budget %d: device tripped but the rebuild reported success", budget)
		}

		// Crash: abandon without Close, reopen without faults.
		st = nil
		re, err := Open(dir, Options{GrowthRebuildFactor: 1e9, CleanThreshold: 1})
		if err != nil {
			t.Fatalf("budget %d: reopen after mid-rebuild crash: %v", budget, err)
		}
		rep, err := re.Scrub()
		if err != nil {
			t.Fatalf("budget %d: scrub: %v", budget, err)
		}
		if !rep.Clean() {
			t.Fatalf("budget %d: reopened store not clean: %v", budget, rep.Problems)
		}
		for i, tid := range tids {
			got, err := re.Get(tid)
			if err != nil {
				t.Fatalf("budget %d: synced row %d lost after crash: %v", budget, tid, err)
			}
			if len(got) != len(rows[i]) {
				t.Fatalf("budget %d: synced row %d came back with %d attrs, want %d", budget, tid, len(got), len(rows[i]))
			}
		}
		// The reopened generation keeps working: a query and an insert both
		// succeed.
		if _, _, err := re.Search(NewQuery(5).WhereNum("num", 100)); err != nil {
			t.Fatalf("budget %d: search on reopened store: %v", budget, err)
		}
		if _, err := re.Insert(Row{"num": Num(1)}); err != nil {
			t.Fatalf("budget %d: insert on reopened store: %v", budget, err)
		}
		re.Close()
	}
}
