package iva

import "github.com/sparsewide/iva/internal/core"

// VectorExtentsForTest exposes the committed index extents to external test
// packages (package iva_test): fault-injection tests that import
// internal/server must sit outside package iva (server imports iva), and
// from there s.ix is unreachable.
func (s *Store) VectorExtentsForTest() []core.VectorExtent { return s.ix.VectorExtents() }
