// Tuning: sweep the two nG-signature parameters the paper studies — the
// relative vector length α (Figs. 14/15) and the gram length n (Fig. 16) —
// on your own workload through the public API, and watch the filter/refine
// trade-off move. Larger α means longer signatures: slower to scan, sharper
// at filtering; the sweet spot balances the two.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/sparsewide/iva"
)

// buildWorkload fills a store and returns queries sampled from its data.
func buildWorkload(opts iva.Options, rng *rand.Rand) (*iva.Store, []*iva.Query, error) {
	st, err := iva.Create("", opts)
	if err != nil {
		return nil, nil, err
	}
	adjectives := []string{"vintage", "compact", "deluxe", "portable", "refurbished", "wireless"}
	nouns := []string{"camera", "espresso machine", "bicycle", "keyboard", "amplifier", "telescope"}
	type item struct {
		name  string
		price float64
	}
	var items []item
	for i := 0; i < 3000; i++ {
		name := adjectives[rng.Intn(len(adjectives))] + " " + nouns[rng.Intn(len(nouns))]
		price := float64(10 + rng.Intn(2000))
		items = append(items, item{name, price})
		row := iva.Row{
			"name":  iva.Strings(name),
			"price": iva.Num(price),
		}
		if rng.Intn(3) == 0 {
			row["condition"] = iva.Strings([]string{"new", "used", "parts"}[rng.Intn(3)])
		}
		if _, err := st.Insert(row); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	var queries []*iva.Query
	for i := 0; i < 30; i++ {
		it := items[rng.Intn(len(items))]
		name := it.name
		if i%2 == 0 { // users mistype; exact matches then sit at ed 1-2
			b := []byte(name)
			p := rng.Intn(len(b))
			b[p] = byte('a' + rng.Intn(26))
			name = string(b)
		}
		queries = append(queries, iva.NewQuery(10).
			WhereText("name", name).
			WhereNum("price", it.price))
	}
	return st, queries, nil
}

func measure(st *iva.Store, queries []*iva.Query) (accesses float64, filter, refine time.Duration, err error) {
	for _, q := range queries {
		_, stats, serr := st.Search(q)
		if serr != nil {
			return 0, 0, 0, serr
		}
		accesses += float64(stats.TableAccesses)
		filter += stats.FilterTime
		refine += stats.RefineTime
	}
	n := time.Duration(len(queries))
	return accesses / float64(len(queries)), filter / n, refine / n, nil
}

func main() {
	fmt.Println("alpha sweep (n=2):")
	fmt.Println("alpha  accesses/query  filter    refine    index MB")
	for _, alpha := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
		st, queries, err := buildWorkload(iva.Options{Alpha: alpha, N: 2}, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatal(err)
		}
		acc, filter, refine, err := measure(st, queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3.0f%%   %-15.1f %-9v %-9v %.2f\n",
			alpha*100, acc, filter.Round(time.Microsecond), refine.Round(time.Microsecond),
			float64(st.Stats().IndexBytes)/1e6)
		st.Close()
	}

	fmt.Println("\nn sweep (alpha=20%):")
	fmt.Println("n  accesses/query  filter    refine")
	for _, n := range []int{2, 3, 4, 5} {
		st, queries, err := buildWorkload(iva.Options{Alpha: 0.20, N: n}, rand.New(rand.NewSource(1)))
		if err != nil {
			log.Fatal(err)
		}
		acc, filter, refine, err := measure(st, queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d  %-15.1f %-9v %v\n",
			n, acc, filter.Round(time.Microsecond), refine.Round(time.Microsecond))
		st.Close()
	}
	fmt.Println("\nthe paper's Table I default (alpha=20%, n=2) should sit near the minimum")
}
