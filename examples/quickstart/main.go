// Quickstart: the paper's running example (Figs. 1 and 2) on the public
// API. Users of a community system submit freely-defined metadata rows; a
// structured similarity query ranks tuples by a monotone metric over edit
// distances and numeric differences, tolerating the "Cannon" typo.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/sparsewide/iva"
)

func main() {
	// An in-memory store; pass a directory to persist (see the
	// communitybase example).
	st, err := iva.Create("", iva.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// The sparse wide table of Fig. 1: three tuples, wildly different
	// attributes, no schema declared anywhere.
	rows := []iva.Row{
		{
			"Type":     iva.Strings("Job Position"),
			"Industry": iva.Strings("Computer", "Software"), // multi-string value
			"Company":  iva.Strings("Google"),
			"Salary":   iva.Num(1000),
		},
		{
			"Type":    iva.Strings("Digital Camera"),
			"Price":   iva.Num(230),
			"Company": iva.Strings("Canon"),
			"Pixel":   iva.Num(10_000_000),
		},
		{
			"Type":   iva.Strings("Music Album"),
			"Year":   iva.Num(1996),
			"Price":  iva.Num(20),
			"Artist": iva.Strings("Michael Jackson"),
		},
		// Fig. 2's tuples: one with the "Cannon" typo.
		{
			"Type":    iva.Strings("Digital Camera"),
			"Price":   iva.Num(240),
			"Company": iva.Strings("Sony"),
		},
		{
			"Type":    iva.Strings("Digital Camera"),
			"Price":   iva.Num(230),
			"Company": iva.Strings("Cannon"),
		},
	}
	for _, r := range rows {
		if _, err := st.Insert(r); err != nil {
			log.Fatal(err)
		}
	}

	// Fig. 2's query: the user wants a Canon digital camera around 230.
	// Edit distance absorbs the typo; the numeric term ranks by |Δprice|.
	q := iva.NewQuery(3).
		WhereText("Type", "Digital Camera").
		WhereText("Company", "Canon").
		WhereNum("Price", 230)
	res, stats, err := st.Search(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-3 for {Type: Digital Camera, Company: Canon, Price: 230}")
	for i, r := range res {
		row, err := st.Get(r.TID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. dist=%.3f  Company=%v Price=%v\n",
			i+1, r.Dist, row["Company"], row["Price"])
	}
	fmt.Printf("\nfiltering scanned %d tuples, fetched %d from the table file\n",
		stats.Scanned, stats.TableAccesses)
	fmt.Println("(at catalog scale the fetch count stays near k while the scan covers everything)")
}
