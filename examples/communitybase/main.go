// Communitybase: a Google-Base-style data publishing service on a
// persistent store. Users submit items with freely invented attributes; the
// service survives restarts (Open), absorbs churn (inserts, deletes,
// updates), and lets the §IV-B cleaning policy rebuild the files when
// tombstones accumulate. ITF weighting makes rare attributes count more, as
// in the paper's S4–S6 settings.
//
// Run with: go run ./examples/communitybase
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"github.com/sparsewide/iva"
)

func main() {
	dir := filepath.Join(os.TempDir(), "iva-communitybase")
	os.RemoveAll(dir)

	// Phase 1: the service starts and users publish items.
	st, err := iva.Create(dir, iva.Options{
		Weights:        "ITF",
		CleanThreshold: 0.05, // rebuild when 5% of tuples are tombstones
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	categories := []string{"vehicles", "housing", "jobs", "recipes", "events"}
	cities := []string{"harbin", "singapore", "beijing", "shanghai", "hangzhou"}
	var bulk []iva.Row
	for i := 0; i < 2000; i++ {
		cat := categories[rng.Intn(len(categories))]
		row := iva.Row{
			"category": iva.Strings(cat),
			"city":     iva.Strings(cities[rng.Intn(len(cities))]),
		}
		// Users attach their own fields per category — the table grows
		// attributes organically, no migration ever runs.
		switch cat {
		case "vehicles":
			row["make"] = iva.Strings([]string{"toyota", "volkswagen", "geely", "bmw"}[rng.Intn(4)])
			row["mileage"] = iva.Num(float64(rng.Intn(200000)))
			row["price"] = iva.Num(float64(2000 + rng.Intn(40000)))
		case "housing":
			row["rooms"] = iva.Num(float64(1 + rng.Intn(5)))
			row["rent"] = iva.Num(float64(300 + rng.Intn(3000)))
		case "jobs":
			row["industry"] = iva.Strings([]string{"software", "hardware", "finance"}[rng.Intn(3)])
			row["salary"] = iva.Num(float64(500 + rng.Intn(5000)))
		case "recipes":
			row["cuisine"] = iva.Strings([]string{"sichuan", "cantonese", "italian"}[rng.Intn(3)])
			row["minutes"] = iva.Num(float64(10 + rng.Intn(120)))
		case "events":
			row["year"] = iva.Num(float64(2006 + rng.Intn(4)))
		}
		bulk = append(bulk, row)
	}
	// Bulk feeds land through the batched path: one pass per vector list.
	tids, err := st.InsertBatch(bulk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d items across %d attributes\n", len(tids), st.Stats().Attributes)

	// Phase 2: restart the service — everything is on disk.
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	st, err = iva.Open(dir, iva.Options{Weights: "ITF", CleanThreshold: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Printf("reopened store: %d live tuples\n\n", st.Stats().Tuples)

	// Phase 3: community churn. Sellers remove and edit listings; the
	// cleaning policy rebuilds files behind the scenes.
	for i := 0; i < 300; i++ {
		victim := tids[rng.Intn(len(tids))]
		if rng.Intn(2) == 0 {
			err = st.Delete(victim)
		} else {
			_, err = st.Update(victim, iva.Row{
				"category": iva.Strings("vehicles"),
				"make":     iva.Strings("toyota"),
				"price":    iva.Num(float64(3000 + rng.Intn(20000))),
			})
		}
		if err != nil && err != iva.ErrNotFound {
			log.Fatal(err)
		}
	}
	s := st.Stats()
	fmt.Printf("after churn: %d live, %d pending tombstones, %d automatic rebuilds\n\n",
		s.Tuples, s.Deleted, s.Rebuilds)

	// Phase 4: an ITF-weighted search. "make" is a rare attribute compared
	// to "city", so matching the make matters more than matching the city.
	// The price term gets an explicit small weight so a few thousand of
	// price difference does not drown out the text matches (raw numeric
	// scales are the metric designer's job; weights are the knob).
	q := iva.NewQuery(5).
		WhereText("category", "vehicles").
		WhereText("make", "toyotta"). // typo, as usual
		WhereText("city", "harbin").
		WhereNumWeighted("price", 12000, 0.001)
	res, stats, err := st.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top vehicles for {make≈toyota, city=harbin, price≈12000} (ITF weights):")
	for i, r := range res {
		row, err := st.Get(r.TID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d. dist=%-8.3f make=%-12s city=%-10s price=%s\n",
			i+1, r.Dist, cell(row, "make"), cell(row, "city"), cell(row, "price"))
	}
	fmt.Printf("  (fetched %d of %d scanned tuples)\n",
		stats.TableAccesses, stats.Scanned)
}

// cell renders one attribute, showing the sparse table's ndf explicitly.
func cell(row iva.Row, attr string) string {
	v, ok := row[attr]
	if !ok {
		return "ndf"
	}
	return v.String()
}
