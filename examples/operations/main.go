// Operations: the care-and-feeding surface of the store — bulk ingestion,
// per-term query diagnostics (Explain), index introspection (Attrs), the
// integrity checker (Check), the §VI-style sharded deployment with
// parallel fan-out search, and the observability layer (Prometheus-style
// metrics scrape plus the slow-query log with its per-term trace).
//
// Run with: go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"github.com/sparsewide/iva"
)

func main() {
	// A sharded, in-memory deployment: four partitions, searched in
	// parallel and merged exactly (the paper's §VI observation that a flat
	// index partitions trivially).
	// SlowQueryThreshold arms the slow-query log; a nanosecond threshold
	// captures every query so the demo always has a trace to show.
	cluster, err := iva.CreateSharded("", 4, iva.Options{SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	rng := rand.New(rand.NewSource(99))
	makes := []string{"canon", "nikon", "sony", "olympus", "pentax", "leica"}
	for i := 0; i < 8000; i++ {
		if _, err := cluster.Insert(iva.Row{
			"brand": iva.Strings(makes[rng.Intn(len(makes))]),
			"model": iva.Strings(fmt.Sprintf("mk%d", rng.Intn(400))),
			"price": iva.Num(float64(150 + rng.Intn(3000))),
		}); err != nil {
			log.Fatal(err)
		}
	}
	q := iva.NewQuery(5).
		WhereText("brand", "cannon").
		WhereNum("price", 800)
	res, stats, err := cluster.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sharded search over %d shards: %d results, %d of %d tuples fetched\n",
		cluster.Shards(), len(res), stats.TableAccesses, stats.Scanned)
	for i, r := range res {
		row, _ := cluster.Get(r.TID)
		fmt.Printf("  %d. tid=%-9d dist=%-8.3f brand=%v price=%v\n",
			i+1, r.TID, r.Dist, row["brand"], row["price"])
	}

	// A single store exposes the deeper operational tools.
	st, err := iva.Create("", iva.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	rows := make([]iva.Row, 0, 3000)
	for i := 0; i < 3000; i++ {
		rows = append(rows, iva.Row{
			"brand": iva.Strings(makes[rng.Intn(len(makes))]),
			"price": iva.Num(float64(150 + rng.Intn(3000))),
		})
	}
	if _, err := st.InsertBatch(rows); err != nil { // bulk-feed ingestion
		log.Fatal(err)
	}

	// Explain: where do the bounds come from, and how tight are they?
	ex, err := st.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexplain: fetched %d of %d, pool bar %.3f\n",
		ex.Fetched, ex.Scanned, ex.PoolMaxFinal)
	for _, te := range ex.Terms {
		fmt.Printf("  %-7s type %-3s alpha %.0f%%  defined %-5d est mean %.2f [%.2f..%.2f] tightness %.2f\n",
			te.Attr, te.ListType, te.Alpha*100, te.Defined, te.MeanEst, te.MinEst, te.MaxEst, te.Tightness)
	}

	// Attrs: what did §III-D's selection choose?
	fmt.Println("\nindex layout:")
	for _, a := range st.Attrs() {
		if a.DF == 0 {
			continue
		}
		fmt.Printf("  %-7s %-8s type %-3s %6.1f KiB for df %d\n",
			a.Name, a.Kind, a.ListType, float64(a.Bits)/8/1024, a.DF)
	}

	// Check: the fsck that validates every vector against the table.
	rep, err := st.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintegrity: %d entries, %d vectors verified, ok=%v\n",
		rep.Entries, rep.VectorElems, rep.Ok())

	// Metrics scrape: the same text a Prometheus server would pull from
	// `ivatool serve` /metrics. Every shard reports under its own label;
	// here we pick out the query counters and the cache hit ratio.
	fmt.Println("\nmetrics scrape (selected series):")
	for _, line := range strings.Split(cluster.MetricsText(), "\n") {
		if strings.HasPrefix(line, "iva_queries_total") ||
			strings.HasPrefix(line, "iva_fanout_queries_total") ||
			strings.HasPrefix(line, "iva_io_cache_hit_ratio") ||
			strings.HasPrefix(line, "iva_query_duration_seconds_count") {
			fmt.Printf("  %s\n", line)
		}
	}

	// The slow-query log keeps the full trace of each offending query:
	// the fan-out root, one "query" span per shard, and under each the
	// filter phase with its per-term scan counters.
	fmt.Printf("\nslow-query log: %d entries; latest trace:\n", cluster.SlowQueryCount())
	var sb strings.Builder
	if err := cluster.WriteSlowQueries(&sb); err != nil {
		log.Fatal(err)
	}
	excerpt := sb.String()
	if len(excerpt) > 400 {
		excerpt = excerpt[:400] + "..."
	}
	fmt.Println(excerpt)
}
