// Products: an e-commerce catalog in the style of the CNET dataset the
// paper cites (233,304 products, 2,984 attributes, ~11 defined each). This
// example builds a sparse catalog of several product families with
// family-specific attributes, then runs typo-tolerant similarity searches
// and shows how the filter cuts random table accesses.
//
// Run with: go run ./examples/products
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/sparsewide/iva"
)

type family struct {
	kind   string
	brands []string
	// attribute name → value generator
	numeric map[string]func(*rand.Rand) float64
	text    map[string][]string
}

var families = []family{
	{
		kind:   "Digital Camera",
		brands: []string{"Canon", "Sony", "Nikon", "Olympus", "Panasonic"},
		numeric: map[string]func(*rand.Rand) float64{
			"Price": func(r *rand.Rand) float64 { return 120 + float64(r.Intn(900)) },
			"Pixel": func(r *rand.Rand) float64 { return float64(6+r.Intn(18)) * 1_000_000 },
			"Zoom":  func(r *rand.Rand) float64 { return float64(3 + r.Intn(27)) },
		},
		text: map[string][]string{
			"Lens":  {"Wide-angle", "Telephoto", "Macro", "Fisheye"},
			"Color": {"Black", "Silver", "Red"},
		},
	},
	{
		kind:   "Laptop",
		brands: []string{"Lenovo", "Dell", "Apple", "Asus"},
		numeric: map[string]func(*rand.Rand) float64{
			"Price":  func(r *rand.Rand) float64 { return 400 + float64(r.Intn(2200)) },
			"Memory": func(r *rand.Rand) float64 { return float64(int(4) << r.Intn(4)) },
			"Screen": func(r *rand.Rand) float64 { return 11 + float64(r.Intn(7)) },
		},
		text: map[string][]string{
			"CPU":   {"Core i5", "Core i7", "Ryzen 5", "Ryzen 7"},
			"Color": {"Black", "Gray"},
		},
	},
	{
		kind:   "Headphones",
		brands: []string{"Bose", "Sennheiser", "Sony", "Audio-Technica"},
		numeric: map[string]func(*rand.Rand) float64{
			"Price":     func(r *rand.Rand) float64 { return 30 + float64(r.Intn(400)) },
			"Impedance": func(r *rand.Rand) float64 { return float64(16 + 16*r.Intn(20)) },
		},
		text: map[string][]string{
			"Fit":   {"Over-ear", "On-ear", "In-ear"},
			"Color": {"Black", "White", "Blue"},
		},
	},
}

// typo injects community noise: a duplicated or substituted character.
func typo(r *rand.Rand, s string) string {
	b := []byte(s)
	p := r.Intn(len(b))
	if r.Intn(2) == 0 {
		b = append(b[:p], append([]byte{b[p]}, b[p:]...)...) // Canon → Cannon
	} else {
		b[p] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func main() {
	st, err := iva.Create("", iva.Options{Alpha: 0.20, N: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	rng := rand.New(rand.NewSource(2009))
	const products = 5000
	for i := 0; i < products; i++ {
		f := families[rng.Intn(len(families))]
		brand := f.brands[rng.Intn(len(f.brands))]
		if rng.Float64() < 0.05 { // 5% of sellers typo the brand
			brand = typo(rng, brand)
		}
		row := iva.Row{
			"Type":  iva.Strings(f.kind),
			"Brand": iva.Strings(brand),
		}
		for name, gen := range f.numeric {
			if rng.Float64() < 0.8 { // sparse: not every field filled
				row[name] = iva.Num(gen(rng))
			}
		}
		for name, opts := range f.text {
			if rng.Float64() < 0.6 {
				row[name] = iva.Strings(opts[rng.Intn(len(opts))])
			}
		}
		if _, err := st.Insert(row); err != nil {
			log.Fatal(err)
		}
	}
	s := st.Stats()
	fmt.Printf("catalog: %d products, %d attributes, table %.1f MB, index %.1f MB\n\n",
		s.Tuples, s.Attributes, float64(s.TableBytes)/1e6, float64(s.IndexBytes)/1e6)

	searches := []struct {
		label string
		q     *iva.Query
	}{
		{
			"Canon camera near 230 (typo-tolerant)",
			iva.NewQuery(5).
				WhereText("Type", "Digital Camera").
				WhereText("Brand", "Cannon"). // user typed the typo
				WhereNum("Price", 230),
		},
		{
			"cheap over-ear headphones",
			iva.NewQuery(5).
				WhereText("Type", "Headphones").
				WhereText("Fit", "Over-ear").
				WhereNum("Price", 50),
		},
		{
			"16GB laptop, weighted toward CPU",
			iva.NewQuery(5).
				WhereText("Type", "Laptop").
				WhereTextWeighted("CPU", "Ryzen 7", 5).
				WhereNum("Memory", 16),
		},
	}
	for _, sc := range searches {
		res, stats, err := st.Search(sc.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", sc.label)
		for i, r := range res {
			row, err := st.Get(r.TID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %d. dist=%-7.3f Brand=%-14v Price=%-6v %v\n",
				i+1, r.Dist, row["Brand"], row["Price"], row["Type"])
		}
		fmt.Printf("  (fetched %d of %d tuples — %.1f%% pass the filter)\n\n",
			stats.TableAccesses, stats.Scanned,
			100*float64(stats.TableAccesses)/float64(stats.Scanned))
	}
}
