package iva

import (
	"context"
	"sync"

	"github.com/sparsewide/iva/internal/obs"
)

// Read-repair. A corrupt vector-list segment detected at query time
// (DegradeReads lists it in QueryStats) or by a scrub is queued here; a
// background worker fetches the committed payload bytes from a replication
// peer, verifies them against the LOCAL committed checksum word — the wire
// adds no trust — and rewrites the segment in place. The next read serves it
// clean. If no peer has a matching copy the segment simply stays degraded:
// read-repair can only improve on the DegradeReads floor, never fall below it.

// ReplPeer fetches raw bytes of a peer store's files; *repl.Client implements
// it over the /v1/repl/segment endpoint.
type ReplPeer interface {
	FetchFileRange(ctx context.Context, file string, off, n int64) ([]byte, error)
}

type repairer struct {
	s    *Store
	peer ReplPeer

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []uint32
	pending  map[uint32]struct{} // queued or in flight — dedupes re-detections
	inflight int
	closed   bool

	cancel context.CancelFunc
	done   chan struct{}

	attempts *obs.Counter
	repaired *obs.Counter
	failed   *obs.Counter
}

// SetRepairPeer configures the replication peer corrupt index segments are
// re-fetched from and starts the background repair worker. Calling it again
// swaps the peer; the queue survives the swap.
func (s *Store) SetRepairPeer(peer ReplPeer) {
	if peer == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.repairer; r != nil {
		r.mu.Lock()
		r.peer = peer
		r.mu.Unlock()
		return
	}
	labels := s.opts.obsLabels
	r := &repairer{
		s:        s,
		peer:     peer,
		pending:  make(map[uint32]struct{}),
		done:     make(chan struct{}),
		attempts: s.reg.Counter("iva_readrepair_attempts_total", "Corrupt segments a peer re-fetch was attempted for.", labels),
		repaired: s.reg.Counter("iva_readrepair_repaired_total", "Corrupt segments healed in place from a peer.", labels),
		failed:   s.reg.Counter("iva_readrepair_failed_total", "Repair attempts that failed (peer unreachable, mismatched generation, or local refusal).", labels),
	}
	r.cond = sync.NewCond(&r.mu)
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	s.repairer = r
	go r.run(ctx)
}

// enqueueRepair queues corrupt segment ids for peer repair. Non-blocking and
// cheap when no peer is configured; safe under any store lock.
func (s *Store) enqueueRepair(ids []uint32) {
	r := s.repairer
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, id := range ids {
		if _, dup := r.pending[id]; dup {
			continue
		}
		r.pending[id] = struct{}{}
		r.queue = append(r.queue, id)
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// stopRepairer shuts the worker down and waits for it. Idempotent.
func (s *Store) stopRepairer() {
	s.mu.Lock()
	r := s.repairer
	s.mu.Unlock()
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.cond.Broadcast()
	<-r.done
}

// waitRepairs blocks until the repair queue is drained and no repair is in
// flight (test hook).
func (s *Store) waitRepairs() {
	r := s.repairer
	if r == nil {
		return
	}
	r.mu.Lock()
	for (len(r.queue) > 0 || r.inflight > 0) && !r.closed {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

func (r *repairer) run(ctx context.Context) {
	defer close(r.done)
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		id := r.queue[0]
		r.queue = r.queue[1:]
		r.inflight++
		peer := r.peer
		r.mu.Unlock()

		r.repairOne(ctx, peer, id)

		r.mu.Lock()
		delete(r.pending, id)
		r.inflight--
		r.mu.Unlock()
		r.cond.Broadcast()
	}
}

// repairOne fetches and applies one segment. The engine pointer is captured
// briefly under the read lock but NOT held across the network fetch: a
// rebuild may swap the index mid-repair, in which case the write errors
// against the retired file and the attempt is simply counted failed — the
// rebuild already produced a clean segment anyway.
func (r *repairer) repairOne(ctx context.Context, peer ReplPeer, seg uint32) {
	r.attempts.Inc()
	s := r.s
	s.engineMu.RLock()
	ix := s.ix
	s.engineMu.RUnlock()
	off, n, ok := ix.SegmentSpan(seg)
	if !ok {
		r.failed.Inc()
		return
	}
	buf, err := peer.FetchFileRange(ctx, indexFileName, off, n)
	if err != nil {
		r.failed.Inc()
		return
	}
	if err := ix.RepairSegment(seg, buf); err != nil {
		r.failed.Inc()
		return
	}
	r.repaired.Inc()
}
