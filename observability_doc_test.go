package iva

import (
	"os"
	"regexp"
	"testing"
	"time"
)

// TestMetricsDocumented keeps OBSERVABILITY.md honest: every metric family a
// running partitioned store (with a scrubber) actually registers must appear
// in the reference table. New metrics fail this test until documented.
func TestMetricsDocumented(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("OBSERVABILITY.md unreadable: %v", err)
	}
	s, err := CreateSharded(t.TempDir(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Insert(map[string]Value{"Price": Num(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Search(NewQuery(1).WhereNum("Price", 1)); err != nil {
		t.Fatal(err)
	}
	sc := s.StartScrubber(ScrubberOptions{Interval: time.Hour, Throttle: -1})
	defer sc.Stop()
	sc.SweepNow()

	typeLine := regexp.MustCompile(`(?m)^# TYPE (\S+) `)
	families := typeLine.FindAllStringSubmatch(s.MetricsText(), -1)
	if len(families) < 30 {
		t.Fatalf("exposition registered only %d families — the store under test lost its telemetry", len(families))
	}
	docText := string(doc)
	for _, m := range families {
		name := m[1]
		if !regexp.MustCompile("`" + regexp.QuoteMeta(name) + "`").MatchString(docText) {
			t.Errorf("metric family %s is not documented in OBSERVABILITY.md", name)
		}
	}
}
