package iva

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	st, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	camera, err := st.Insert(Row{
		"Type":    Strings("Digital Camera"),
		"Company": Strings("Canon"),
		"Price":   Num(230),
		"Pixel":   Num(10_000_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(Row{
		"Type":     Strings("Job Position"),
		"Industry": Strings("Computer", "Software"),
		"Company":  Strings("Google"),
		"Salary":   Num(1000),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(Row{
		"Type":   Strings("Music Album"),
		"Artist": Strings("Michael Jackson"),
		"Year":   Num(1996),
		"Price":  Num(20),
	}); err != nil {
		t.Fatal(err)
	}

	// The paper's Fig. 2 query, typo included.
	res, stats, err := st.Search(NewQuery(2).
		WhereText("Type", "Digital Camera").
		WhereText("Company", "Cannon").
		WhereNum("Price", 225))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].TID != camera {
		t.Fatalf("top result %d, want the camera %d", res[0].TID, camera)
	}
	if stats.Scanned != 3 {
		t.Fatalf("scanned %d", stats.Scanned)
	}

	row, err := st.Get(camera)
	if err != nil {
		t.Fatal(err)
	}
	if row["Company"].Texts()[0] != "Canon" {
		t.Fatalf("company = %v", row["Company"])
	}
}

func TestKindConflict(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	if _, err := st.Insert(Row{"Price": Num(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(Row{"Price": Strings("cheap")}); err == nil {
		t.Fatal("kind conflict accepted")
	}
}

func TestEmptyAndInvalidRows(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	if _, err := st.Insert(Row{}); err == nil {
		t.Fatal("empty row accepted")
	}
	if _, err := st.Insert(Row{"A": Strings()}); err == nil {
		t.Fatal("empty string set accepted")
	}
}

func TestDeleteUpdateAndCleaning(t *testing.T) {
	st, _ := Create("", Options{CleanThreshold: 0.2})
	defer st.Close()
	var tids []TID
	for i := 0; i < 50; i++ {
		tid, err := st.Insert(Row{
			"name": Strings(fmt.Sprintf("item number %02d", i)),
			"rank": Num(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	// Delete 15 tuples; at β=0.2 a rebuild must fire along the way.
	for i := 0; i < 15; i++ {
		if err := st.Delete(tids[i]); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Rebuilds == 0 {
		t.Fatal("cleaning policy never rebuilt")
	}
	if stats.Tuples != 35 {
		t.Fatalf("live = %d, want 35", stats.Tuples)
	}
	// Deleted tuples are gone; survivors remain queryable.
	if _, err := st.Get(tids[0]); err != ErrNotFound {
		t.Fatalf("deleted tuple Get: %v", err)
	}
	res, _, err := st.Search(NewQuery(1).WhereText("name", "item number 30"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Dist != 0 {
		t.Fatalf("survivor not found exactly: %v", res)
	}

	// Update returns a fresh id.
	newTID, err := st.Update(tids[20], Row{"name": Strings("replacement")})
	if err != nil {
		t.Fatal(err)
	}
	if newTID == tids[20] {
		t.Fatal("update kept the old tid")
	}
	if err := st.Delete(tids[20]); err != ErrNotFound {
		t.Fatalf("old tid after update: %v", err)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Insert(Row{"city": Strings("singapore"), "pop": Num(5_600_000)})
	if err != nil {
		t.Fatal(err)
	}
	st.Insert(Row{"city": Strings("harbin"), "pop": Num(9_500_000)})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res, _, err := st2.Search(NewQuery(1).WhereText("city", "singapore"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].TID != want || res[0].Dist != 0 {
		t.Fatalf("reopened search: %v", res)
	}
	// Store keeps accepting writes after reopen.
	if _, err := st2.Insert(Row{"city": Strings("beijing")}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTwiceFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(dir, Options{}); err == nil {
		t.Fatal("second Create on same dir accepted")
	}
}

func TestMetricOptions(t *testing.T) {
	for _, m := range []string{"L1", "L2", "Linf"} {
		for _, w := range []string{"EQU", "ITF"} {
			st, err := Create("", Options{Metric: m, Weights: w})
			if err != nil {
				t.Fatalf("%s+%s: %v", w, m, err)
			}
			st.Insert(Row{"a": Strings("hello world"), "b": Num(5)})
			st.Insert(Row{"a": Strings("goodbye moon")})
			res, _, err := st.Search(NewQuery(2).WhereText("a", "hello world").WhereNum("b", 5))
			if err != nil {
				t.Fatalf("%s+%s: %v", w, m, err)
			}
			if len(res) != 2 || res[0].Dist != 0 {
				t.Fatalf("%s+%s: %v", w, m, res)
			}
			st.Close()
		}
	}
	if _, err := Create("", Options{Metric: "L9"}); err == nil {
		t.Fatal("bad metric accepted")
	}
	if _, err := Create("", Options{Weights: "IDF"}); err == nil {
		t.Fatal("bad weights accepted")
	}
}

func TestUnknownQueryAttribute(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	st.Insert(Row{"a": Strings("x")})
	res, _, err := st.Search(NewQuery(1).WhereText("never-seen", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
}

func TestWeightedTerms(t *testing.T) {
	st, _ := Create("", Options{})
	defer st.Close()
	a, _ := st.Insert(Row{"x": Strings("aaaa"), "y": Strings("zzzz")})
	b, _ := st.Insert(Row{"x": Strings("zzzz"), "y": Strings("aaaa")})
	// Weight x heavily: the tuple matching x must win.
	res, _, err := st.Search(NewQuery(2).
		WhereTextWeighted("x", "aaaa", 10).
		WhereTextWeighted("y", "aaaa", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].TID != a {
		t.Fatalf("weighted winner %d, want %d (b=%d)", res[0].TID, a, b)
	}
	if _, _, err := st.Search(NewQuery(1).WhereTextWeighted("x", "a", -1)); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestLargeStoreRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("large randomized store")
	}
	st, _ := Create("", Options{CleanThreshold: -1})
	defer st.Close()
	rng := rand.New(rand.NewSource(77))
	textAttrs := []string{"type", "brand", "color"}
	live := map[TID]Row{}
	for i := 0; i < 800; i++ {
		row := Row{}
		row[textAttrs[rng.Intn(len(textAttrs))]] = Strings(fmt.Sprintf("value %d", rng.Intn(40)))
		if rng.Intn(2) == 0 {
			row["price"] = Num(float64(rng.Intn(1000)))
		}
		tid, err := st.Insert(row)
		if err != nil {
			t.Fatal(err)
		}
		live[tid] = row
		if rng.Intn(5) == 0 {
			for victim := range live {
				if err := st.Delete(victim); err != nil {
					t.Fatal(err)
				}
				delete(live, victim)
				break
			}
		}
	}
	if int(st.Stats().Tuples) != len(live) {
		t.Fatalf("live count %d, want %d", st.Stats().Tuples, len(live))
	}
	// Every live tuple must be findable at distance 0 by its own values.
	checked := 0
	for tid, row := range live {
		if checked >= 40 {
			break
		}
		checked++
		q := NewQuery(20)
		for name, v := range row {
			if v.Kind() == Numeric {
				q.WhereNum(name, v.Float())
			} else {
				q.WhereText(name, v.Texts()[0])
			}
		}
		res, _, err := st.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range res {
			if r.TID == tid && r.Dist == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("tuple %d not found by its own values; results %v", tid, res)
		}
	}
}
