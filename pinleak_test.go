package iva

import "testing"

// TestStoreReleasesPoolPins asserts the pin-leak invariant at the API
// surface: after any store operation returns, every buffer-pool pin taken by
// its readers has been released (iva_pool_pinned_frames must read 0 at
// quiesce). This is the regression test for the defer-time receiver bug
// where `defer rds.close()` on a value receiver snapshotted the empty
// reader set and leaked one pinned page per reader on every query.
func TestStoreReleasesPoolPins(t *testing.T) {
	s, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	assertNoPins := func(stage string) {
		t.Helper()
		if n := s.pool.PinnedFrames(); n != 0 {
			t.Fatalf("%s leaked %d pinned frames", stage, n)
		}
	}

	for i := 0; i < 200; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	assertNoPins("insert+sync")

	q := NewQuery(5).WhereNum("Price", 150).WhereText("Type", "Camera")
	if _, _, err := s.Search(q); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Search")

	if _, err := s.Explain(q); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Explain")

	if _, err := s.Check(); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Check")

	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Search(q); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Delete+Rebuild+Search")
}
