package iva

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestStoreReleasesPoolPins asserts the pin-leak invariant at the API
// surface: after any store operation returns, every buffer-pool pin taken by
// its readers has been released (iva_pool_pinned_frames must read 0 at
// quiesce). This is the regression test for the defer-time receiver bug
// where `defer rds.close()` on a value receiver snapshotted the empty
// reader set and leaked one pinned page per reader on every query.
func TestStoreReleasesPoolPins(t *testing.T) {
	s, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	assertNoPins := func(stage string) {
		t.Helper()
		if n := s.pool.PinnedFrames(); n != 0 {
			t.Fatalf("%s leaked %d pinned frames", stage, n)
		}
	}

	for i := 0; i < 200; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	assertNoPins("insert+sync")

	q := NewQuery(5).WhereNum("Price", 150).WhereText("Type", "Camera")
	if _, _, err := s.Search(q); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Search")

	if _, err := s.Explain(q); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Explain")

	if _, err := s.Check(); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Check")

	if err := s.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Search(q); err != nil {
		t.Fatal(err)
	}
	assertNoPins("Delete+Rebuild+Search")
}

// storeTrippingCtx reports context.Canceled after Err has been polled
// threshold times, so a cancellation lands deterministically mid-query.
type storeTrippingCtx struct {
	context.Context
	polls     atomic.Int64
	threshold int64
}

func (c *storeTrippingCtx) Err() error {
	if c.polls.Add(1) > c.threshold {
		return context.Canceled
	}
	return nil
}

// TestSearchContextReleasesPoolPins extends the pin-leak invariant to the
// failing-query paths: a pre-cancelled SearchContext and a context tripped
// mid-query must both return ctx.Err() with zero frames left pinned, at
// every parallelism.
func TestSearchContextReleasesPoolPins(t *testing.T) {
	s, err := Create("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 300; i++ {
		if _, err := s.Insert(map[string]Value{
			"Type":  Strings("Digital Camera"),
			"Price": Num(float64(100 + i%97)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery(5).WhereNum("Price", 150).WhereText("Type", "Camera")
	wantRes, _, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled: must fail before touching the device.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	before := s.pool.Stats().Snapshot()
	if _, _, err := s.SearchContext(cancelled, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: got %v, want context.Canceled", err)
	}
	after := s.pool.Stats().Snapshot()
	if after.PhysReads != before.PhysReads || after.CacheHits != before.CacheHits {
		t.Fatalf("pre-cancelled ctx touched the pool: %+v -> %+v", before, after)
	}
	if n := s.pool.PinnedFrames(); n != 0 {
		t.Fatalf("pre-cancelled SearchContext leaked %d pins", n)
	}

	// Mid-query trips across the parallelism grid.
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		s.ix.SetSearchParallelism(par)
		for _, threshold := range []int64{1, 3, 5} {
			ctx := &storeTrippingCtx{Context: context.Background(), threshold: threshold}
			_, _, err := s.SearchContext(ctx, q)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("par=%d threshold=%d: got %v, want context.Canceled", par, threshold, err)
			}
			if n := s.pool.PinnedFrames(); n != 0 {
				t.Fatalf("par=%d threshold=%d: cancellation leaked %d pins", par, threshold, n)
			}
		}
	}

	// The store still answers correctly after all those aborted queries.
	s.ix.SetSearchParallelism(0)
	res, _, err := s.SearchContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(wantRes) {
		t.Fatalf("post-cancellation search returned %d results, want %d", len(res), len(wantRes))
	}
	for i := range res {
		if res[i].TID != wantRes[i].TID {
			t.Fatalf("post-cancellation result %d: got id %d, want %d", i, res[i].TID, wantRes[i].TID)
		}
	}
	if n := s.pool.PinnedFrames(); n != 0 {
		t.Fatalf("clean search leaked %d pins", n)
	}
}
